"""Join-path graph: multi-hop join discovery as a first-class query.

Column-level search answers "what joins with this column?".  The join
graph lifts that to the table level: nodes are indexed tables, edges are
high-confidence joinable column pairs (cosine blended with a MinHash
Jaccard estimate when the warehouse is attached), and a path query
answers "how do I get from table A to table C?" — including multi-hop
routes through intermediate tables that share no direct column overlap.

This demo:

1. opens a service over a small warehouse whose join topology forces a
   detour (orders -> customers -> regions: no direct orders/regions edge),
2. lists each table's strongest neighbors,
3. finds ranked direct and 2-hop join paths,
4. mutates the corpus (drops the bridging table) and shows the graph and
   its path answers staying consistent without a full rebuild,
5. exports the graph as Graphviz DOT.

The same queries are served over HTTP (``POST /paths``,
``GET /graph/stats``) and from the CLI (``python -m repro graph``).

Run::

    python examples/join_graph_demo.py
"""

from __future__ import annotations

from repro import DiscoveryService
from repro.core.config import WarpGateConfig
from repro.storage.column import Column
from repro.storage.table import Table
from repro.warehouse.catalog import Warehouse
from repro.warehouse.connector import WarehouseConnector


def build_warehouse() -> Warehouse:
    """A corpus whose only orders->regions route is through customers."""
    names = [
        "Ada Lovelace", "Grace Hopper", "Annie Easley",
        "Mary Jackson", "Katherine Johnson",
    ]
    regions = ["north", "south", "east", "west", "central"]
    warehouse = Warehouse("shop")
    warehouse.add_table(
        "sales",
        Table(
            "orders",
            [
                Column("order_id", [100, 101, 102, 103, 104]),
                Column("buyer_name", names),
                Column("total", [19.5, 42.0, 7.25, 88.0, 15.75]),
            ],
        ),
    )
    warehouse.add_table(
        "sales",
        Table(
            "customers",
            [
                Column("full_name", names),
                Column("home_region", regions),
            ],
        ),
    )
    warehouse.add_table(
        "sales",
        Table(
            "regions",
            [
                Column("region_name", regions),
                Column("population", [100, 200, 300, 400, 500]),
            ],
        ),
    )
    return warehouse


def main() -> None:
    service = DiscoveryService(WarpGateConfig(threshold=0.3))
    service.open(WarehouseConnector(build_warehouse()))

    # 1. The graph is built lazily from batched vector sweeps on first use.
    stats = service.graph_stats()
    print(
        f"join graph: {stats['tables']} tables, {stats['edges']} edges "
        f"at threshold {stats['edge_threshold']}"
    )

    # 2. Strongest neighbors per table.
    print()
    for table in ("sales.orders", "sales.customers"):
        ranked = service.neighbors(table)
        listed = ", ".join(
            f"{db}.{name} ({edge.confidence:.2f})" for (db, name), edge in ranked
        )
        print(f"{table} joins: {listed}")

    # 3. Ranked paths: the orders->regions answer needs a 2-hop route.
    print()
    for path in service.find_paths("sales.orders", "sales.regions", max_hops=3):
        print(f"  {path.score:.3f}  {path.describe()}")

    # 4. Drop the bridge: the route must disappear, incrementally.
    service.drop_table("sales", "customers")
    orphaned = service.find_paths("sales.orders", "sales.regions", max_hops=3)
    print()
    print(f"after dropping sales.customers: {len(orphaned)} path(s) remain")

    # 5. Export what is left for graphviz.
    print()
    print(service.export_graph("dot"))


if __name__ == "__main__":
    main()
