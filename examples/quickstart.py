"""Quickstart: index a corpus, discover joinable columns, explain a match.

Builds the smallest NextiaJD-style testbed, indexes it with the paper's
default configuration (Web Table Embeddings + SimHash LSH at threshold 0.7),
runs one top-k query, and prints what happened at every step.

Run::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import WarpGate, generate_testbed
from repro._util import format_bytes, format_seconds


def main() -> None:
    # 1. A corpus: 28 tables with planted joinable column groups and the
    #    NextiaJD quality rule applied post-hoc as ground truth.
    corpus = generate_testbed("XS")
    print(
        f"corpus {corpus.name}: {corpus.table_count} tables, "
        f"{corpus.column_count} columns, {corpus.query_count} benchmark queries"
    )

    # 2. Index it.  The connector meters every byte the way a cloud
    #    warehouse bills scans.
    system = WarpGate()
    report = system.index_corpus(corpus.connector())
    print(
        f"indexed {report.columns_indexed} columns in "
        f"{format_seconds(report.wall_seconds)} "
        f"(scanned {format_bytes(report.scanned_bytes)}, "
        f"billed ${report.charged_dollars:.4f})"
    )

    # 3. Ask for joinable columns.
    query = corpus.queries[0].ref
    result = system.search(query, k=5)
    print()
    print(result.describe())

    # 4. Check against ground truth and explain the top match.
    answers = corpus.ground_truth.answers(query)
    print()
    print(f"ground-truth answers: {sorted(str(a) for a in answers)}")
    if result.candidates:
        top = result.candidates[0]
        verdict = "correct" if top.ref in answers else "not in ground truth"
        print(f"top candidate is {verdict}")
        print(f"explanation: {system.explain(query, top.ref)}")


if __name__ == "__main__":
    main()
