"""The paper's running example: Joey's sales-campaign lookup (§1, §3.2, §4.3.3).

A business user wants to pick campaign targets from SALESFORCE.ACCOUNT but
needs each company's business sector, which lives — unbeknownst to her — in
the STOCKS database, uppercase-formatted and three databases away.

This script replays the full "Add column via lookup" flow of Figure 3:

1. right-click ACCOUNT.Name → top-k join-path recommendations;
2. pick the INDUSTRIES recommendation, browse its columns;
3. add Industry_Group (and Ticker) next to Name via a cardinality-preserving
   join that matches values case-insensitively;
4. chain the added Ticker to the PRICES table to track stock performance.

Run::

    python examples/sales_campaign_lookup.py
"""

from __future__ import annotations

from repro import LookupService, WarpGate, generate_sigma_sample_database
from repro.datasets.sigma import JOEY_QUERY
from repro.storage.schema import ColumnRef


def main() -> None:
    corpus = generate_sigma_sample_database(with_snapshots=False)
    print(
        f"Sigma Sample Database: {corpus.table_count} tables across "
        f"{len(corpus.warehouse.database_names)} databases"
    )

    system = WarpGate()
    system.index_corpus(corpus.connector())
    service = LookupService(system)
    query = ColumnRef(*JOEY_QUERY)

    # Step 1-2: recommendations window.
    print(f"\nStep 1: Joey right-clicks {query} -> Add column via lookup")
    recommendations = service.recommend(query, k=4)
    for rec in recommendations:
        rate = service.match_rate(query, rec.candidate)
        print(f"  {rec}  [verified match rate {rate:.0%}]")

    industries = ColumnRef("STOCKS", "INDUSTRIES", "Company_Name")
    chosen = next(rec for rec in recommendations if rec.candidate == industries)
    print(f"\nStep 2: she picks #{chosen.rank} and browses {industries.table}:")
    print(f"  columns: {', '.join(chosen.table_columns)}")

    # Step 3: add the sector column (cardinality-preserving join).
    enriched = service.add_column_via_lookup(
        query, industries, ["Industry_Group", "Ticker"]
    )
    print("\nStep 3: ACCOUNT enriched with Industry_Group and Ticker:")
    for row_index in range(5):
        name = enriched.column("Name")[row_index]
        group = enriched.column("Industry_Group")[row_index]
        ticker = enriched.column("Ticker")[row_index]
        print(f"  {name!r:40s} sector={group!r:28s} ticker={ticker!r}")
    matched = sum(1 for v in enriched.column("Industry_Group").values if v is not None)
    print(
        f"  ({matched}/{enriched.row_count} accounts matched despite the "
        f"UPPERCASE formatting in STOCKS — a semantic join)"
    )

    # Step 4: the ticker chain to stock prices.
    ticker_query = ColumnRef("STOCKS", "INDUSTRIES", "Ticker")
    hops = system.search(ticker_query, k=3)
    print(f"\nStep 4: {ticker_query} joins onward to:")
    for candidate in hops.candidates:
        print(f"  {candidate}")
    print(
        "\nJoey can now filter accounts by sector and track their stock "
        "performance — without knowing any join path in advance."
    )


if __name__ == "__main__":
    main()
