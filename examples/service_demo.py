"""DiscoveryService: incremental indexing, batch search, and HTTP serving.

The library core (``WarpGate``) indexes once and queries a frozen index.
This demo drives the serving facade the way a deployed system would:

1. open a service over a corpus,
2. search it (typed request in, typed response out),
3. add a brand-new table *without re-indexing* and see it surface,
4. drop a table and watch its columns leave the results,
5. amortize a batch of queries through ``search_many``,
6. answer the same query over JSON-over-HTTP (``python -m repro serve``
   wraps exactly this server).

Run::

    python examples/service_demo.py
"""

from __future__ import annotations

import http.client
import json
import threading

from repro import DiscoveryService, SearchRequest, generate_testbed
from repro.service import make_server
from repro.storage.column import Column
from repro.storage.table import Table


def main() -> None:
    # 1. Open a service over the smallest NextiaJD-style testbed.
    corpus = generate_testbed("XS")
    service = DiscoveryService()
    report = service.open(corpus.connector())
    print(f"opened service: {report.columns_indexed} columns indexed")

    # 2. One typed search.
    query = corpus.queries[0].ref
    response = service.search(SearchRequest(query=query, k=5))
    print()
    print(response.describe())

    # 3. Incremental add: a table that did not exist at indexing time.
    new_table = Table(
        "partner_registry",
        [
            Column("partner_key", list(range(1, 9))),
            Column(
                "partner_label",
                [f"partner {chr(ord('a') + i)} holdings" for i in range(8)],
            ),
        ],
    )
    stats = service.add_table(query.database, new_table)
    print()
    print(
        f"added partner_registry incrementally: {stats.indexed_columns} columns "
        f"indexed after {stats.mutations} mutation(s)"
    )

    # 4. Drop it again — no full re-index either way.
    stats = service.drop_table(query.database, "partner_registry")
    print(f"dropped partner_registry: back to {stats.indexed_columns} columns")

    # 5. Batch search: duplicate queries pay the embedding once.
    requests = [SearchRequest(query=q.ref, k=3) for q in corpus.queries[:4]]
    responses = service.search_many(requests)
    print()
    print(f"batch of {len(requests)} queries:")
    for batch_response in responses:
        top = batch_response.refs[0] if batch_response.refs else "-"
        print(f"  {batch_response.query} -> {top}")

    # 6. The same service over HTTP.
    server = make_server(service, "127.0.0.1", 0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    port = server.server_address[1]
    try:
        connection = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
        connection.request(
            "POST",
            "/search",
            body=json.dumps({"query": str(query), "k": 3}),
            headers={"Content-Type": "application/json"},
        )
        payload = json.loads(connection.getresponse().read().decode("utf-8"))
        connection.close()
        print()
        print(f"HTTP /search on port {port}:")
        for candidate in payload["candidates"]:
            print(f"  {candidate['ref']} ({candidate['score']:.3f})")
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)
    print()
    print(f"served {service.stats().searches} searches in total")


if __name__ == "__main__":
    main()
