"""Sample-efficiency and scan-cost study (§3.1.3, §4.4, §5.1).

Cloud warehouses bill per byte scanned, so a full profiling pass over every
table is slow *and* expensive.  This script sweeps WarpGate's sample size on
one testbed and reports, for each setting:

* effectiveness (P@2, R@10) against the full-scan configuration,
* metered bytes and the dollar charge under usage-based pricing,
* end-to-end query response time.

The paper's finding: embeddings are robust down to very small samples while
cost and latency drop by orders of magnitude.

Run::

    python examples/sampling_cost_study.py [XS|S|M|L]
"""

from __future__ import annotations

import sys

from repro import WarpGate, WarpGateConfig, evaluate_system, generate_testbed
from repro._util import format_bytes
from repro.eval.report import render_table

SAMPLE_SIZES = (10, 100, 1000)


def main() -> None:
    key = sys.argv[1] if len(sys.argv) > 1 else "XS"
    corpus = generate_testbed(key)
    print(f"{corpus.name}: {corpus.column_count} columns, avg {corpus.average_rows:.0f} rows/table")

    configs = {"full scan": WarpGateConfig()}
    for size in SAMPLE_SIZES:
        configs[f"sample {size}"] = WarpGateConfig(sample_size=size)

    rows = []
    baseline = None
    for name, config in configs.items():
        evaluation = evaluate_system(WarpGate(config), corpus, max_queries=40)
        if baseline is None:
            baseline = evaluation
        rows.append(
            (
                name,
                f"{evaluation.precision_at(2):.3f}",
                f"{evaluation.recall_at(10):.3f}",
                format_bytes(evaluation.index_report.scanned_bytes),
                f"${evaluation.index_report.charged_dollars:.4f}",
                f"{evaluation.timing.mean_response_s * 1e3:.1f} ms",
            )
        )

    print()
    print(
        render_table(
            ["config", "P@2", "R@10", "bytes scanned", "billed", "e2e/query"],
            rows,
            title="Sampling sweep (paper: effectiveness within ±1-2%, "
            "lookup time -100x)",
        )
    )
    print(
        "\nReading: effectiveness barely moves while scanned bytes, billing, "
        "and response time collapse — the paper's case for passive sampling."
    )


if __name__ == "__main__":
    main()
