"""Join discovery over a directory of CSV files (an Open-Data-style lake).

The evaluation corpora in this repository are generated, but the library
works over any tables you can load.  This example writes a small CSV "data
lake" to a temporary directory, loads it through the CSV codec into a
simulated warehouse, and discovers the join paths — including one that only
exists semantically (differently formatted company names).

Run::

    python examples/csv_data_lake.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import WarpGate, WarpGateConfig
from repro.storage.csv_codec import read_csv_file, write_csv_file
from repro.storage.table import Table
from repro.storage.column import Column
from repro.storage.schema import ColumnRef
from repro.warehouse.catalog import Warehouse
from repro.warehouse.connector import WarehouseConnector

SUPPLIERS = [
    "Acme Dynamics Corp", "Global Logistics Inc", "Nova Analytics Llc",
    "Summit Robotics Ltd", "Vertex Energy Group", "Quantum Foods Co",
]


def build_lake(directory: Path) -> None:
    """Write three CSVs: two joinable on company, one unrelated."""
    purchases = Table(
        "purchases",
        [
            Column("po_number", [f"po-{i:04d}" for i in range(1, 13)]),
            Column("supplier", [SUPPLIERS[i % 6] for i in range(12)]),
            Column("amount", [round(100.0 + 13.7 * i, 2) for i in range(12)]),
        ],
    )
    ratings = Table(
        "vendor_ratings",
        [
            # Same companies, SHOUTING — joinable only after normalization.
            Column("vendor", [s.upper() for s in SUPPLIERS]),
            Column("score", [4.5, 3.8, 4.9, 2.7, 4.1, 3.3]),
        ],
    )
    weather = Table(
        "weather",
        [
            Column("day", [f"2023-01-{d:02d}" for d in range(1, 11)]),
            Column("temp_c", [2.5, 3.1, -1.0, 0.4, 5.2, 6.6, 4.0, 2.2, 1.1, 0.0]),
        ],
    )
    for table in (purchases, ratings, weather):
        write_csv_file(table, directory / f"{table.name}.csv")


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        directory = Path(tmp)
        build_lake(directory)
        print(f"data lake at {directory}:")
        for path in sorted(directory.glob("*.csv")):
            print(f"  {path.name}")

        # Load every CSV into one simulated warehouse.
        warehouse = Warehouse("csv-lake")
        for path in sorted(directory.glob("*.csv")):
            warehouse.add_table("lake", read_csv_file(path))

        system = WarpGate(WarpGateConfig(threshold=0.5))
        report = system.index_corpus(WarehouseConnector(warehouse))
        print(f"\nindexed {report.columns_indexed} columns")

        query = ColumnRef("lake", "purchases", "supplier")
        result = system.search(query, k=3)
        print(f"\njoinable with {query}:")
        for candidate in result.candidates:
            print(f"  {candidate}")
        top = result.candidates[0].ref
        assert top == ColumnRef("lake", "vendor_ratings", "vendor")
        print(
            "\nThe UPPERCASE vendor column is the top match: a join an exact "
            "value-overlap system would score zero."
        )


if __name__ == "__main__":
    main()
