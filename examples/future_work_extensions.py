"""The paper's §5.2 optimization directions, implemented and demonstrated.

WarpGate's discussion section sketches three future optimizations; this
repository implements all of them, and this script shows each one working:

1. **Contextual embeddings (§5.2.1)** — blend sibling-column context into a
   column's embedding so ambiguous value sets (generic code columns) become
   distinguishable by the table they live in.
2. **Block-and-verify search (§5.2.3)** — pivot-based metric filtering that
   skips most exact similarity computations without changing any result.
3. **Self-supervised fine-tuning (§5.2.3)** — a contrastive linear map,
   trained without labels, that pushes joinable columns closer together so
   the SimHash threshold separates cleanly.

Run::

    python examples/future_work_extensions.py
"""

from __future__ import annotations

import numpy as np

from repro._util import rng_for
from repro.embedding import (
    ColumnEncoder,
    ContextualColumnEncoder,
    ContrastiveFineTuner,
    get_model,
)
from repro.index import PivotFilterIndex
from repro.storage.column import Column
from repro.storage.table import Table


def demo_contextual() -> None:
    print("1) Contextual embeddings (§5.2.1)")
    base = ColumnEncoder(get_model("webtable"))
    encoder = ContextualColumnEncoder(base, context_weight=0.3)
    codes = [f"x-{i:03d}" for i in range(40)]
    orders = Table(
        "orders",
        [
            Column("code", list(codes)),
            Column("ship_city", ["boston", "chicago"] * 20),
            Column("carrier", ["fedex", "ups"] * 20),
        ],
    )
    stocks = Table(
        "stocks",
        [
            Column("code", list(codes)),
            Column("ticker_name", ["acme corp", "globex inc"] * 20),
            Column("close_price", [1.5, 2.5] * 20),
        ],
    )
    plain = float(
        base.encode(orders.column("code")) @ base.encode(stocks.column("code"))
    )
    contextual = float(
        encoder.encode_in_table(orders.column("code"), orders)
        @ encoder.encode_in_table(stocks.column("code"), stocks)
    )
    print(f"   identical code columns, no context:   cosine = {plain:.3f}")
    print(f"   same columns, table context blended:  cosine = {contextual:.3f}")
    print("   -> context separates false friends that values alone cannot.\n")


def demo_pivot_filter() -> None:
    print("2) Block-and-verify search (§5.2.3, after PEXESO)")
    dim = 64
    rng = rng_for("extensions-demo")
    centers = rng.standard_normal((10, dim))
    centers /= np.linalg.norm(centers, axis=1, keepdims=True)
    index = PivotFilterIndex(dim, n_pivots=12, threshold=0.8)
    for point in range(1_000):
        vector = centers[point % 10] + 0.1 * rng.standard_normal(dim)
        index.add(point, vector / np.linalg.norm(vector))
    index.build()
    results = index.query(centers[0], 5)
    print(f"   top-5 found: {[key for key, _ in results]}")
    print(
        f"   pivot filter skipped {index.prune_rate:.0%} of the 1000 exact "
        "distance computations — with identical results to a full scan.\n"
    )


def demo_finetune() -> None:
    print("3) Self-supervised fine-tuning (§5.2.3)")
    encoder = ColumnEncoder(get_model("webtable"))
    # Training columns: three value families, two columns each, no labels.
    columns = []
    for family, prefix in enumerate(("inv", "shp", "ord")):
        for variant in range(2):
            values = [f"{prefix}-{(variant * 29 + i) % 150:05d}" for i in range(300)]
            columns.append(Column(f"{prefix}_{variant}", values))
    tuner = ContrastiveFineTuner(encoder, sample_size=80)
    tuned, report = tuner.fit(columns, steps=120)
    print(
        f"   cosine of same-column views:      {report.positive_cosine_before:.3f}"
        f" -> {report.positive_cosine_after:.3f}"
    )
    print(
        f"   cosine of different-column views: {report.negative_cosine_before:.3f}"
        f" -> {report.negative_cosine_after:.3f}"
    )
    print(
        f"   margin: {report.margin_before:.3f} -> {report.margin_after:.3f} "
        "(wider margin = better SimHash utilization)"
    )


def main() -> None:
    demo_contextual()
    demo_pivot_filter()
    demo_finetune()


if __name__ == "__main__":
    main()
