"""Compare WarpGate against the Aurum and D3L baselines on one testbed.

Reproduces a miniature Figure 4 + Table 2: all three systems index the same
corpus through their own metered connector, answer the same queries, and are
scored with the paper's metrics (top-k precision/recall averaged over
queries; end-to-end response time with index-lookup share).

Run::

    python examples/compare_systems.py [XS|S|M|L]
"""

from __future__ import annotations

import sys

from repro import Aurum, D3L, WarpGate, evaluate_system, generate_testbed
from repro.eval.report import render_pr_figure, render_table


def main() -> None:
    key = sys.argv[1] if len(sys.argv) > 1 else "XS"
    corpus = generate_testbed(key)
    print(
        f"{corpus.name}: {corpus.table_count} tables, {corpus.column_count} "
        f"columns, {corpus.query_count} queries "
        f"(avg {corpus.average_answers:.1f} answers each)"
    )

    evaluations = {}
    for system in (Aurum(), D3L(), WarpGate()):
        evaluation = evaluate_system(system, corpus, max_queries=60)
        evaluations[system.name] = evaluation
        report = evaluation.index_report
        print(
            f"  {system.name}: indexed {report.columns_indexed} columns in "
            f"{report.wall_seconds:.1f}s"
        )

    print()
    print(
        render_pr_figure(
            {name: ev.curve for name, ev in evaluations.items()},
            title=f"Top-k precision/recall on {corpus.name} (cf. Figure 4)",
        )
    )

    print()
    rows = [
        (
            name,
            f"{ev.timing.mean_response_s * 1e3:.2f}",
            f"{ev.timing.mean_lookup_s * 1e3:.3f}",
            f"{ev.timing.lookup_fraction:.0%}",
        )
        for name, ev in evaluations.items()
    ]
    print(
        render_table(
            ["system", "e2e ms/query", "lookup ms/query", "lookup share"],
            rows,
            title="Query response time (cf. Table 2)",
        )
    )
    print(
        "\nShapes to check against the paper: WarpGate ahead of D3L ahead of "
        "Aurum on effectiveness; Aurum near-zero latency; D3L slowest; "
        "WarpGate's lookup a minority of its end-to-end time."
    )


if __name__ == "__main__":
    main()
