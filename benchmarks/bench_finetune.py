"""§5.2.3 — self-supervised fine-tuning for better index utilization.

The paper proposes fine-tuning the embedding model so joinable columns get
*higher* cosine similarity, letting the SimHash index (fixed threshold 0.7)
separate candidates from noise more cleanly.  This benchmark trains the
contrastive linear map on one testbed's columns (no labels used) and
measures what the paper predicts:

* the cosine margin between ground-truth-joinable pairs and non-joinable
  pairs widens;
* the LSH index at threshold 0.7 returns fewer false candidates.
"""

from __future__ import annotations

import numpy as np

from repro._util import rng_for
from repro.embedding.encoder import ColumnEncoder
from repro.embedding.finetune import ContrastiveFineTuner
from repro.embedding.registry import get_model
from repro.eval.report import render_table

N_TRAINING_COLUMNS = 60
N_PAIR_SAMPLES = 150


def pair_cosines(encoder, store, pairs):
    """Mean cosine of encoder embeddings over (ref, ref) pairs."""
    values = []
    for left_ref, right_ref in pairs:
        left = encoder.encode(store.column(left_ref))
        right = encoder.encode(store.column(right_ref))
        values.append(float(left @ right))
    return float(np.mean(values)) if values else 0.0


def collect_pairs(corpus):
    """Ground-truth-joinable pairs and sampled non-joinable pairs."""
    truth = corpus.require_ground_truth()
    positives = []
    for query in corpus.queries:
        for answer in truth.answers(query.ref):
            positives.append((query.ref, answer))
            if len(positives) >= N_PAIR_SAMPLES:
                break
        if len(positives) >= N_PAIR_SAMPLES:
            break
    store = corpus.to_store()
    refs = [ref for ref in store.column_refs() if store.column(ref).dtype.is_textual]
    rng = rng_for("finetune-bench-negatives")
    negatives = []
    while len(negatives) < N_PAIR_SAMPLES:
        i, j = rng.integers(0, len(refs), size=2)
        left_ref, right_ref = refs[int(i)], refs[int(j)]
        if left_ref.same_table(right_ref) or truth.is_answer(left_ref, right_ref):
            continue
        negatives.append((left_ref, right_ref))
    return store, positives, negatives


def run_finetune(corpus):
    base = ColumnEncoder(get_model("webtable"))
    store, positives, negatives = collect_pairs(corpus)
    training = [
        store.column(ref)
        for index, ref in enumerate(store.column_refs())
        if index % 3 == 0 and store.column(ref).dtype.is_textual
    ][:N_TRAINING_COLUMNS]
    tuner = ContrastiveFineTuner(base, sample_size=80)
    tuned, report = tuner.fit(training, steps=120)
    return {
        "base_pos": pair_cosines(base, store, positives),
        "base_neg": pair_cosines(base, store, negatives),
        "tuned_pos": pair_cosines(tuned, store, positives),
        "tuned_neg": pair_cosines(tuned, store, negatives),
        "train_report": report,
    }


def test_finetune_widens_join_margin(benchmark, testbed_s):
    outcome = benchmark.pedantic(
        run_finetune, args=(testbed_s,), rounds=1, iterations=1
    )
    rows = [
        ("base", outcome["base_pos"], outcome["base_neg"],
         outcome["base_pos"] - outcome["base_neg"]),
        ("fine-tuned", outcome["tuned_pos"], outcome["tuned_neg"],
         outcome["tuned_pos"] - outcome["tuned_neg"]),
    ]
    print()
    print(
        render_table(
            ["encoder", "joinable cos", "non-joinable cos", "margin"],
            rows,
            title="§5.2.3 fine-tuning: cosine margin on testbedS "
            "(trained without labels)",
        )
    )

    base_margin = outcome["base_pos"] - outcome["base_neg"]
    tuned_margin = outcome["tuned_pos"] - outcome["tuned_neg"]
    # The self-supervised objective widens the joinable/non-joinable gap.
    assert tuned_margin > base_margin
    # Joinable pairs stay above the paper's index threshold.
    assert outcome["tuned_pos"] > 0.7
    # The training itself converged on its own objective too.
    report = outcome["train_report"]
    assert report.margin_after > report.margin_before
