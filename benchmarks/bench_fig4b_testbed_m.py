"""Figure 4(b) — top-k precision and recall on NextiaJD testbedM.

Same comparison as 4(a) on the larger testbed; the paper reports the same
ordering with lower absolute numbers (testbedM plants more answers per
query, so per-k precision spreads thinner).
"""

from __future__ import annotations

from repro.eval.report import render_pr_figure

PAPER_CURVE_NOTE = (
    "paper (approx): warpgate P@2=0.35 R@10=0.40 | d3l P@2=0.25 R@10=0.35 "
    "| aurum P@2=0.10 R@10=0.10"
)


def test_fig4b_precision_recall_testbed_m(benchmark, evaluations_m):
    curves = benchmark.pedantic(
        lambda: {name: ev.curve for name, ev in evaluations_m.items()},
        rounds=1,
        iterations=1,
    )
    print()
    print(render_pr_figure(curves, title="Figure 4(b): testbedM top-k P/R"))
    print(PAPER_CURVE_NOTE)

    warpgate = evaluations_m["warpgate"]
    d3l = evaluations_m["d3l"]
    aurum = evaluations_m["aurum"]

    for k in (2, 3):
        assert warpgate.precision_at(k) > aurum.precision_at(k)
        assert warpgate.recall_at(k) > aurum.recall_at(k)
        assert warpgate.recall_at(k) >= d3l.recall_at(k) - 0.05
    for k in (2, 3, 5, 10):
        assert warpgate.recall_at(k) > 1.5 * aurum.recall_at(k)
    assert warpgate.recall_at(10) > warpgate.recall_at(2)
