"""Ablation — the SimHash LSH similarity threshold.

The paper fixes the threshold at 0.7 without a sweep; DESIGN.md marks it for
ablation.  Expectation: lowering the threshold trades precision for recall
(more below-threshold candidates survive re-ranking), raising it does the
opposite, and 0.7 sits near the knee.
"""

from __future__ import annotations

from repro.core.config import WarpGateConfig
from repro.core.warpgate import WarpGate
from repro.eval.report import render_table
from repro.eval.runner import evaluate_system

THRESHOLDS = (0.5, 0.6, 0.7, 0.8, 0.9)
QUERY_CAP = 50


def run_sweep(corpus):
    return {
        threshold: evaluate_system(
            WarpGate(WarpGateConfig(threshold=threshold)),
            corpus,
            max_queries=QUERY_CAP,
        )
        for threshold in THRESHOLDS
    }


def test_lsh_threshold_sweep(benchmark, testbed_s):
    results = benchmark.pedantic(run_sweep, args=(testbed_s,), rounds=1, iterations=1)
    rows = [
        (
            threshold,
            evaluation.precision_at(2),
            evaluation.precision_at(10),
            evaluation.recall_at(10),
            evaluation.timing.mean_lookup_s * 1e3,
        )
        for threshold, evaluation in results.items()
    ]
    print()
    print(
        render_table(
            ["threshold", "P@2", "P@10", "R@10", "lookup ms/q"],
            rows,
            title="Ablation: LSH cosine threshold on testbedS (paper fixes 0.7)",
        )
    )

    # Recall@10 decreases (weakly) as the threshold rises.
    recalls = [results[t].recall_at(10) for t in THRESHOLDS]
    assert all(a >= b - 0.02 for a, b in zip(recalls, recalls[1:]))
    # A prohibitive threshold visibly costs recall vs the paper's 0.7.
    assert results[0.9].recall_at(10) < results[0.7].recall_at(10)
    # The paper's 0.7 keeps nearly all the recall of the loosest setting.
    assert results[0.7].recall_at(10) > 0.9 * results[0.5].recall_at(10)
