"""§4.4 — BERT as the underlying embedding model.

The paper swaps Web Table Embeddings for BERT and finds effectiveness
mostly on par while index lookup and query response get ~10x slower from
inference cost, and that BERT's effectiveness is also robust to sampling.
The BERT-like arm here shares the trained token vectors (so information
content matches) but runs a deliberately deep contextual encoder.
"""

from __future__ import annotations

from repro.core.config import WarpGateConfig
from repro.core.warpgate import WarpGate
from repro.eval.report import render_table
from repro.eval.runner import evaluate_system

QUERY_CAP = 30
SAMPLE = 100  # both arms sample so the comparison isolates inference cost


def run_both(corpus):
    base = evaluate_system(
        WarpGate(WarpGateConfig(sample_size=SAMPLE)), corpus, max_queries=QUERY_CAP
    )
    bert = evaluate_system(
        WarpGate(WarpGateConfig(model_name="bertlike", sample_size=SAMPLE)),
        corpus,
        max_queries=QUERY_CAP,
    )
    return base, bert


def test_bert_arm_parity_and_cost(benchmark, testbed_s):
    base, bert = benchmark.pedantic(
        run_both, args=(testbed_s,), rounds=1, iterations=1
    )
    rows = [
        (
            name,
            evaluation.precision_at(2),
            evaluation.recall_at(10),
            evaluation.timing.mean_embed_s * 1e3,
            evaluation.timing.mean_response_s * 1e3,
        )
        for name, evaluation in (("webtable", base), ("bertlike", bert))
    ]
    print()
    print(
        render_table(
            ["model", "P@2", "R@10", "embed ms/q", "e2e ms/q"],
            rows,
            title="§4.4 BERT comparison (paper: on-par effectiveness, "
            "~10x slower inference)",
        )
    )

    # Effectiveness on par (paper: "mostly on par with Web Table Embeddings").
    assert abs(base.recall_at(10) - bert.recall_at(10)) < 0.15
    assert abs(base.precision_at(2) - bert.precision_at(2)) < 0.15
    # Inference cost dominates: several-fold slower embedding per query.
    assert bert.timing.mean_embed_s > 3.0 * base.timing.mean_embed_s
    # And the slowdown shows up end-to-end, as in the paper.
    assert bert.timing.mean_response_s > 1.5 * base.timing.mean_response_s
