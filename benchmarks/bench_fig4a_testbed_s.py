"""Figure 4(a) — top-k precision and recall on NextiaJD testbedS.

Paper shape: WarpGate consistently above D3L and far above Aurum; Aurum's
recall is flat (its thresholded graph caps what it can ever return).
"""

from __future__ import annotations

from repro.eval.report import render_pr_figure

# Approximate values read off the published Figure 4(a), for side-by-side
# context in the printed report (shape comparison, not exact targets).
PAPER_CURVE_NOTE = (
    "paper (approx): warpgate P@2=0.50 R@10=0.70 | d3l P@2=0.42 R@10=0.55 "
    "| aurum P@2=0.20 R@10=0.35"
)


def test_fig4a_precision_recall_testbed_s(benchmark, evaluations_s):
    curves = benchmark.pedantic(
        lambda: {name: ev.curve for name, ev in evaluations_s.items()},
        rounds=1,
        iterations=1,
    )
    print()
    print(render_pr_figure(curves, title="Figure 4(a): testbedS top-k P/R"))
    print(PAPER_CURVE_NOTE)

    warpgate = evaluations_s["warpgate"]
    d3l = evaluations_s["d3l"]
    aurum = evaluations_s["aurum"]

    # WarpGate leads both baselines at small k on precision and recall.
    for k in (2, 3):
        assert warpgate.precision_at(k) > d3l.precision_at(k)
        assert warpgate.precision_at(k) > aurum.precision_at(k)
        assert warpgate.recall_at(k) > d3l.recall_at(k)
        assert warpgate.recall_at(k) > aurum.recall_at(k)
    # Aurum trails by a large margin everywhere.
    for k in (2, 3, 5, 10):
        assert warpgate.precision_at(k) > 1.5 * aurum.precision_at(k)
        assert warpgate.recall_at(k) > 1.5 * aurum.recall_at(k)
    # Aurum's recall curve is nearly flat: thresholded edges cap it.
    assert aurum.recall_at(10) - aurum.recall_at(3) < 0.1
    # WarpGate's recall climbs with k, as in the figure.
    assert warpgate.recall_at(10) > warpgate.recall_at(2)
