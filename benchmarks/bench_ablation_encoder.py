"""Ablation — column-encoder design choices.

Sweeps the encoder knobs DESIGN.md calls out:

* aggregation: unweighted mean vs idf-weighted (tf-idf) mean;
* dedupe_values: encode distinct values once, frequency-weighted (a §5.2.2
  column-store-friendly optimization — same geometry, less work);
* embedding model: trained webtable vs pure hashing (isolates how much the
  learned semantics add over surface-form matching);
* numeric profile blending on/off.
"""

from __future__ import annotations

from repro.core.config import WarpGateConfig
from repro.core.warpgate import WarpGate
from repro.eval.report import render_table
from repro.eval.runner import evaluate_system

QUERY_CAP = 50

CONFIGS = {
    "paper (mean)": WarpGateConfig(),
    "tfidf": WarpGateConfig(aggregation="tfidf"),
    "dedupe": WarpGateConfig(dedupe_values=True),
    "hashing-model": WarpGateConfig(model_name="hashing"),
    "no-numeric-profile": WarpGateConfig(numeric_profile_weight=0.0),
}


def run_sweep(corpus):
    return {
        name: evaluate_system(WarpGate(config), corpus, max_queries=QUERY_CAP)
        for name, config in CONFIGS.items()
    }


def test_encoder_ablations(benchmark, testbed_s):
    results = benchmark.pedantic(run_sweep, args=(testbed_s,), rounds=1, iterations=1)
    rows = [
        (
            name,
            evaluation.precision_at(2),
            evaluation.recall_at(10),
            evaluation.timing.mean_embed_s * 1e3,
        )
        for name, evaluation in results.items()
    ]
    print()
    print(
        render_table(
            ["config", "P@2", "R@10", "embed ms/q"],
            rows,
            title="Ablation: encoder choices on testbedS",
        )
    )

    paper = results["paper (mean)"]
    # Dedupe is a pure optimization: effectiveness within noise of the paper
    # configuration.
    assert abs(results["dedupe"].recall_at(10) - paper.recall_at(10)) < 0.05
    assert abs(results["dedupe"].precision_at(2) - paper.precision_at(2)) < 0.05
    # tf-idf stays in the same effectiveness band (the paper's choice of
    # plain mean is not load-bearing).
    assert abs(results["tfidf"].recall_at(10) - paper.recall_at(10)) < 0.10
    # The trained table embeddings beat the hashing-only model on recall:
    # learned semantics matter (the paper's §3.1.1 argument).
    assert paper.recall_at(10) >= results["hashing-model"].recall_at(10) - 0.02
