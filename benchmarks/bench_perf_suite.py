"""Perf-tracking suite for the columnar index engine.

Not a paper table — this is the repository's own performance trajectory:
build, single-query, and batched-search timings per corpus size, written
as machine-readable JSON (``BENCH_index.json`` at the repo root) so every
PR leaves a comparable baseline.  ``python -m repro bench`` is the
canonical entry point; this module runs the same harness under pytest at
reduced scale and checks the report contract (the structure the CI smoke
job enforces).
"""

from __future__ import annotations

from repro.eval.perf import run_perf_suite, validate_report, write_report


def test_fast_profile_report_is_valid(tmp_path):
    """The fast profile produces a well-formed, complete report."""
    report = run_perf_suite(profile="fast", repeats=1)
    assert validate_report(report) == []
    path = write_report(report, tmp_path / "BENCH_index.json")
    assert path.exists()


def test_batched_search_amortizes(tmp_path):
    """Even at smoke scale, batched search beats sequential single queries."""
    report = run_perf_suite(profile="fast", sizes=(1_000, 2_000, 4_000), repeats=2)
    largest = report["results"][-1]
    assert largest["batch_speedup"] > 1.0
    assert 0.0 < largest["candidate_fraction"] < 1.0


def test_batched_embedding_amortizes(tmp_path):
    """Batched encode beats the sequential loop and the caches pull weight."""
    report = run_perf_suite(
        profile="fast",
        sizes=(500, 1_000, 2_000),
        embed_sizes=(1_000,),
        repeats=1,
        embed_repeats=1,
    )
    row = report["embed"][-1]
    assert row["speedup"] > 1.0
    assert row["cache_hit_rate"] > 0.5
    assert row["batched_cols_per_s"] > row["sequential_cols_per_s"]
