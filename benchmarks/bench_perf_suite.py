"""Perf-tracking suite for the columnar index engine.

Not a paper table — this is the repository's own performance trajectory:
build, single-query, and batched-search timings per corpus size, written
as machine-readable JSON (``BENCH_index.json`` at the repo root) so every
PR leaves a comparable baseline.  ``python -m repro bench`` is the
canonical entry point; this module runs the same harness under pytest at
reduced scale and checks the report contract (the structure the CI smoke
job enforces).
"""

from __future__ import annotations

import json

import pytest

from repro.eval.perf import (
    ALL_STAGES,
    append_history,
    run_perf_suite,
    validate_report,
    write_report,
)

# Every stage except the quality matrix and the multi-process serving
# bench: the per-stage tests below pin perf contracts and should not pay
# for a (deterministic) quality run or a worker-pool + pre-fork HTTP
# spin-up each — those two stages have their own tests in this module.
_PERF_STAGES = ("results", "embed", "shard", "quant", "artifact", "serve", "graph")


def test_fast_profile_report_is_valid(tmp_path):
    """The fast profile produces a well-formed, complete report."""
    report = run_perf_suite(profile="fast", repeats=1)
    assert report["stages"] == list(ALL_STAGES)
    assert validate_report(report) == []
    path = write_report(report, tmp_path / "BENCH_index.json")
    assert path.exists()


def test_stage_rows_record_warmup_runs():
    """Every timed stage reports its warm-up-excluded protocol."""
    report = run_perf_suite(
        profile="fast",
        stages=_PERF_STAGES,
        sizes=(200, 300, 400),
        shard_sizes=(300,),
        quant_sizes=(300,),
        artifact_sizes=(300,),
        serve_sizes=(300,),
        serve_clients=2,
        serve_requests_per_client=8,
        graph_sizes=(400,),
        repeats=1,
        embed_sizes=(200,),
        embed_repeats=1,
        stage_repeats=1,
        dim=32,
        batch_size=8,
    )
    for stage in ("results", "embed", "shard", "quant", "artifact", "serve", "graph"):
        for row in report[stage]:
            assert row["warmup_runs"] >= 1, (stage, row)


def test_serve_stage_reports_engine_throughput():
    """The serving engine beats thread-per-request even at smoke scale."""
    report = run_perf_suite(
        profile="fast",
        stages=_PERF_STAGES,
        sizes=(500, 1_000, 2_000),
        shard_sizes=(500,),
        quant_sizes=(500,),
        artifact_sizes=(500,),
        serve_sizes=(2_000,),
        serve_clients=8,
        serve_requests_per_client=16,
        graph_sizes=(),
        repeats=1,
        embed_sizes=(500,),
        embed_repeats=1,
        stage_repeats=1,
    )
    row = report["serve"][-1]
    assert row["clients"] == 8
    assert row["requests"] == 8 * 16
    assert row["qps_engine"] > 0 and row["qps_baseline"] > 0
    # The full engine (pool + keep-alive + coalesce + cache) must never
    # lose to thread-per-request single queries; the committed full
    # profile holds this at >= 2x, CI smoke at >= 1x (shared runners).
    assert row["coalesced_speedup"] >= 1.0
    assert 0.0 <= row["cache_hit_rate"] <= 1.0
    # Fast-path contract: a lone client pays no meaningful coalescing tax
    # (generous smoke bound; the committed baseline pins it within 10%).
    assert row["single_latency_ratio"] < 1.5
    assert isinstance(row["batch_histogram"], dict)


def test_batched_search_amortizes(tmp_path):
    """Even at smoke scale, batched search beats sequential single queries."""
    report = run_perf_suite(
        profile="fast",
        stages=_PERF_STAGES,
        sizes=(1_000, 2_000, 4_000),
        serve_sizes=(),
        graph_sizes=(),
        repeats=2,
    )
    largest = report["results"][-1]
    assert largest["batch_speedup"] > 1.0
    assert 0.0 < largest["candidate_fraction"] < 1.0


def test_shard_stage_merges_exactly(tmp_path):
    """Sharded batched search returns result lists identical to 1-shard."""
    report = run_perf_suite(
        profile="fast",
        stages=_PERF_STAGES,
        sizes=(500, 1_000, 2_000),
        shard_sizes=(2_000,),
        quant_sizes=(1_000,),
        artifact_sizes=(500,),
        serve_sizes=(),
        graph_sizes=(),
        repeats=1,
        embed_sizes=(500,),
        embed_repeats=1,
        stage_repeats=1,
    )
    row = report["shard"][-1]
    assert row["n_shards"] == 4
    assert row["merge_equal_fraction"] == 1.0
    assert row["batch_ms_sharded"] > 0.0


def test_quant_stage_recall_meets_bar(tmp_path):
    """Int8 + exact re-rank holds recall@k even at smoke scale."""
    report = run_perf_suite(
        profile="fast",
        stages=_PERF_STAGES,
        sizes=(500, 1_000, 2_000),
        shard_sizes=(500,),
        quant_sizes=(2_000,),
        artifact_sizes=(500,),
        serve_sizes=(),
        graph_sizes=(),
        repeats=1,
        embed_sizes=(500,),
        embed_repeats=1,
        stage_repeats=1,
    )
    row = report["quant"][-1]
    assert row["recall_at_k"] >= 0.98
    assert row["bytes_float32"] == 4 * row["bytes_int8"]


def test_artifact_stage_mmap_load_wins(tmp_path):
    """Format-3 mmap cold load beats the compressed format-2 load."""
    report = run_perf_suite(
        profile="fast",
        stages=_PERF_STAGES,
        sizes=(500, 1_000, 2_000),
        shard_sizes=(500,),
        quant_sizes=(500,),
        artifact_sizes=(2_000,),
        serve_sizes=(),
        graph_sizes=(),
        repeats=1,
        embed_sizes=(500,),
        embed_repeats=1,
        stage_repeats=1,
    )
    row = report["artifact"][-1]
    assert row["load_v3_s"] < row["load_v2_s"]
    assert row["artifact_v2_bytes"] > 0 and row["artifact_v3_bytes"] > 0


def test_history_appends_one_line_per_run(tmp_path):
    """The bench trajectory file gains one well-formed JSON line per run."""
    report = run_perf_suite(
        profile="fast",
        stages=_PERF_STAGES,
        sizes=(200, 300, 400),
        shard_sizes=(300,),
        quant_sizes=(300,),
        artifact_sizes=(300,),
        serve_sizes=(300,),
        serve_clients=2,
        serve_requests_per_client=8,
        graph_sizes=(400,),
        repeats=1,
        embed_sizes=(200,),
        embed_repeats=1,
        stage_repeats=1,
        dim=32,
        batch_size=8,
    )
    history = tmp_path / "BENCH_history.jsonl"
    append_history(report, history)
    append_history(report, history)
    lines = history.read_text(encoding="utf-8").splitlines()
    assert len(lines) == 2
    entry = json.loads(lines[0])
    assert entry["n_columns_max"] == 400
    assert "timestamp" in entry and "git_sha" in entry
    assert isinstance(entry["shard_speedup"], (int, float))
    assert isinstance(entry["quant_recall_at_k"], (int, float))
    assert isinstance(entry["serve_qps_engine"], (int, float))
    assert isinstance(entry["serve_coalesced_speedup"], (int, float))
    assert isinstance(entry["graph_incremental_speedup"], (int, float))
    assert isinstance(entry["graph_path_query_ms"], (int, float))
    # Quality and durability headline keys ride every entry; a run that
    # skipped those stages leaves them null and bench-compare skips
    # null metrics.
    assert "quality_hybrid_recall_at_10" in entry
    assert entry["quality_hybrid_recall_at_10"] is None
    assert "durability_recovery_s" in entry
    assert entry["durability_recovery_s"] is None


def test_graph_stage_incremental_beats_full(tmp_path):
    """One-table maintenance must beat a from-scratch rebuild at smoke scale."""
    report = run_perf_suite(
        profile="fast",
        stages=_PERF_STAGES,
        sizes=(500, 1_000, 2_000),
        shard_sizes=(500,),
        quant_sizes=(500,),
        artifact_sizes=(500,),
        serve_sizes=(),
        graph_sizes=(2_000,),
        repeats=1,
        embed_sizes=(500,),
        embed_repeats=1,
        stage_repeats=1,
    )
    row = report["graph"][-1]
    assert row["n_tables"] > 1
    assert row["n_edges"] > 0
    assert row["build_full_s"] > 0.0
    # Rebuilding one 64-column table's neighborhood vs sweeping all ~31
    # tables: generous smoke bound, the committed full profile holds >= 5x.
    assert row["incremental_speedup"] >= 2.0
    assert row["path_query_ms"] >= 0.0


def test_mpserve_stage_contract(tmp_path):
    """Process fan-out merges exactly and both serving arms answer.

    Speedups are *recorded, not gated* here: CI smoke runs on 1-2 shared
    cores where process fan-out legitimately loses to in-process GEMM.
    The CI bench-smoke job applies the ``proc_shard_speedup > 1.5``
    gate only when the recorded environment shows ``cpus > 1`` at the
    50k-column size.
    """
    report = run_perf_suite(
        profile="fast",
        stages=("mpserve",),
        mpserve_sizes=(1_000,),
        mpserve_clients=2,
        mpserve_requests_per_client=6,
        stage_repeats=1,
    )
    assert report["stages"] == ["mpserve"]
    assert validate_report(report) == []
    assert report["config"]["mpserve"]["transport"] == "pipe"
    row = report["mpserve"][-1]
    assert row["warmup_runs"] >= 1
    assert row["n_workers"] >= 2
    # Bitwise contract surfaces here too: every merged batched result
    # must equal the in-process engine's.
    assert row["merge_equal_fraction"] == 1.0
    assert row["batch_ms_inproc"] > 0.0 and row["batch_ms_proc"] > 0.0
    assert row["proc_shard_speedup"] > 0.0
    assert row["http_clients"] == 2
    assert row["qps_one_proc"] > 0.0 and row["qps_two_proc"] > 0.0
    assert row["http_speedup"] > 0.0
    history = tmp_path / "BENCH_history.jsonl"
    append_history(report, history)
    entry = json.loads(history.read_text(encoding="utf-8").splitlines()[0])
    assert isinstance(entry["proc_shard_speedup"], (int, float))
    assert isinstance(entry["mpserve_http_speedup"], (int, float))


def test_durability_stage_contract(tmp_path):
    """The WAL/checkpoint/recovery arms all answer and recovery is lossless.

    Absolute timings are *recorded, not gated*: fsync latency is pure
    hardware.  What is structural — and asserted — is that every arm
    produced a positive timing and that recovery restored every column.
    """
    report = run_perf_suite(
        profile="fast",
        stages=("durability",),
        durability_sizes=(1_000,),
        stage_repeats=1,
    )
    assert report["stages"] == ["durability"]
    assert validate_report(report) == []
    assert report["config"]["durability"]["fsync"] == "always"
    row = report["durability"][-1]
    assert row["warmup_runs"] >= 1
    assert row["wal_records"] >= 1
    assert row["wal_append_ms"] > 0.0
    assert row["wal_append_nofsync_ms"] > 0.0
    assert row["inmem_update_ms"] > 0.0
    assert row["wal_overhead_x"] > 0.0
    assert row["checkpoint_s"] > 0.0
    assert row["recovery_s"] > 0.0
    assert row["recovered_columns"] == row["n_columns"]
    history = tmp_path / "BENCH_history.jsonl"
    append_history(report, history)
    entry = json.loads(history.read_text(encoding="utf-8").splitlines()[0])
    assert isinstance(entry["durability_wal_overhead_x"], (int, float))
    assert isinstance(entry["durability_recovery_s"], (int, float))


def test_batched_embedding_amortizes(tmp_path):
    """Batched encode beats the sequential loop and the caches pull weight."""
    report = run_perf_suite(
        profile="fast",
        stages=_PERF_STAGES,
        sizes=(500, 1_000, 2_000),
        embed_sizes=(1_000,),
        serve_sizes=(),
        graph_sizes=(),
        repeats=1,
        embed_repeats=1,
    )
    row = report["embed"][-1]
    assert row["speedup"] > 1.0
    assert row["cache_hit_rate"] > 0.5
    assert row["batched_cols_per_s"] > row["sequential_cols_per_s"]


@pytest.fixture(scope="module")
def quality_only_report():
    """One quality-stage-only run shared by the stage-subset tests."""
    return run_perf_suite(profile="fast", stages=("quality",))


def test_unknown_stage_rejected():
    with pytest.raises(ValueError):
        run_perf_suite(profile="fast", stages=("nope",))


def test_stage_subset_skips_other_stages(quality_only_report):
    """A subset run executes and records only the requested stages."""
    report = quality_only_report
    assert report["stages"] == ["quality"]
    for stage in _PERF_STAGES:
        assert report[stage] == []
    assert validate_report(report) == []


def test_quality_stage_reports_the_matrix(quality_only_report):
    """Every matrix cell carries the full metric set, exact backend."""
    report = quality_only_report
    assert report["config"]["quality"]["backend"] == "exact"
    assert report["config"]["quality"]["profile"] == "small"
    rows = report["quality"]
    assert rows
    for row in rows:
        assert isinstance(row["dataset_key"], str)
        assert isinstance(row["system"], str)
        assert isinstance(row["arm"], str)
        for k in (2, 3, 5, 10):
            assert 0.0 <= row[f"p_at_{k}"] <= 1.0
            assert 0.0 <= row[f"r_at_{k}"] <= 1.0
        assert 0.0 <= row["map"] <= 1.0
        assert 0.0 <= row["mrr"] <= 1.0


def test_quality_rows_validated(quality_only_report):
    """Tampered quality rows fail validation with an addressable label."""
    import copy

    broken = copy.deepcopy(quality_only_report)
    broken["quality"][0]["r_at_10"] = None
    problems = validate_report(broken)
    assert any("quality" in problem and "r_at_10" in problem for problem in problems)


def test_quality_headlines_ride_the_history(quality_only_report, tmp_path):
    """A run with quality results lands real numbers in the trajectory."""
    history = tmp_path / "BENCH_history.jsonl"
    append_history(quality_only_report, history)
    entry = json.loads(history.read_text(encoding="utf-8").splitlines()[0])
    assert isinstance(entry["quality_warpgate_recall_at_10"], (int, float))
    assert isinstance(entry["quality_hybrid_recall_at_10"], (int, float))
    assert isinstance(entry["quality_aurum_recall_at_10"], (int, float))
    assert isinstance(entry["quality_d3l_recall_at_10"], (int, float))
    assert isinstance(entry["quality_hybrid_map"], (int, float))
