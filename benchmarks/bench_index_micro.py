"""Micro-benchmarks of the index substrate primitives.

Not a paper table — these pin down the per-operation costs that the
system-level numbers (Table 2, §4.4) are built from: signature computation,
index insertion, probes, and MinHash sketching.
"""

from __future__ import annotations

import numpy as np

from repro._util import rng_for
from repro.index.lsh import SimHashLSHIndex
from repro.index.minhash import MinHashSignature
from repro.index.simhash import SimHashFamily

DIM = 64


def unit_cloud(n: int, key: str) -> np.ndarray:
    matrix = rng_for("micro", key).standard_normal((n, DIM))
    return matrix / np.linalg.norm(matrix, axis=1, keepdims=True)


def test_simhash_signature_cost(benchmark):
    family = SimHashFamily(DIM, 128)
    vector = unit_cloud(1, "sig")[0]
    signature = benchmark(family.signature, vector)
    assert signature.shape == (128,)


def test_simhash_batch_signatures_cost(benchmark):
    family = SimHashFamily(DIM, 128)
    matrix = unit_cloud(1_000, "batch")
    signatures = benchmark(family.signatures, matrix)
    assert signatures.shape == (1_000, 128)


def test_lsh_insert_cost(benchmark):
    vectors = unit_cloud(1_000, "insert")

    def build():
        index = SimHashLSHIndex(DIM)
        for position in range(len(vectors)):
            index.add(position, vectors[position])
        return index

    index = benchmark(build)
    assert len(index) == 1_000


def test_lsh_query_cost_at_5k(benchmark):
    index = SimHashLSHIndex(DIM, threshold=0.7)
    vectors = unit_cloud(5_000, "query")
    for position in range(len(vectors)):
        index.add(position, vectors[position])
    query = vectors[42]
    results = benchmark(index.query, query, 10)
    assert results[0][0] == 42


def test_minhash_sketch_cost(benchmark):
    values = [f"value-{i}" for i in range(1_000)]
    signature = benchmark(MinHashSignature.of, values)
    assert not signature.is_empty


def test_minhash_estimate_cost(benchmark):
    left = MinHashSignature.of([f"v{i}" for i in range(500)])
    right = MinHashSignature.of([f"v{i}" for i in range(250, 750)])
    estimate = benchmark(left.jaccard_estimate, right)
    assert 0.0 <= estimate <= 1.0


def test_column_encode_cost(benchmark, ):
    """Cost of embedding one 1k-value column with the trained model."""
    from repro.embedding.encoder import ColumnEncoder
    from repro.embedding.registry import get_model
    from repro.datasets.domains import domain
    from repro.storage.column import Column

    encoder = ColumnEncoder(get_model("webtable"))
    pool = domain("company").pool
    column = Column("company", [pool[i % len(pool)].title() for i in range(1_000)])
    encoder.encode(column)  # warm caches
    vector = benchmark(encoder.encode, column)
    assert float(np.linalg.norm(vector)) > 0.99
