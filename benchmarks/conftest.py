"""Shared benchmark fixtures.

Corpora and full-system evaluations are session-scoped: Figure 4(a) and
Table 2 read the *same* evaluation runs, exactly as the paper derives both
from one experiment.  Everything is deterministic, so sharing loses nothing.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.baselines.aurum import Aurum
from repro.baselines.d3l import D3L
from repro.core.warpgate import WarpGate
from repro.datasets.nextiajd import generate_testbed
from repro.datasets.sigma import generate_sigma_sample_database
from repro.datasets.spider import generate_spider_corpus
from repro.eval.runner import evaluate_system

# Query caps keep the full benchmark suite in the tens of minutes while
# preserving per-k averages (queries are truncated deterministically).
QUERY_CAP_S = 60
QUERY_CAP_M = 40


def make_systems():
    """Fresh instances of the three compared systems."""
    return (Aurum(), D3L(), WarpGate())


@pytest.fixture(scope="session")
def testbed_s():
    """NextiaJD testbedS at repository-default scale."""
    return generate_testbed("S")


@pytest.fixture(scope="session")
def testbed_m():
    """NextiaJD testbedM at repository-default scale (~4x testbedS rows)."""
    return generate_testbed("M")


@pytest.fixture(scope="session")
def spider():
    """Spider-style PK/FK corpus."""
    return generate_spider_corpus()


@pytest.fixture(scope="session")
def sigma():
    """Sigma Sample Database (with snapshot copies, as deployed)."""
    return generate_sigma_sample_database()


@pytest.fixture(scope="session")
def evaluations_s(testbed_s):
    """All three systems evaluated on testbedS (shared by 4a and Table 2)."""
    return {
        system.name: evaluate_system(system, testbed_s, max_queries=QUERY_CAP_S)
        for system in make_systems()
    }


@pytest.fixture(scope="session")
def evaluations_m(testbed_m):
    """All three systems evaluated on testbedM (shared by 4b and Table 2)."""
    return {
        system.name: evaluate_system(system, testbed_m, max_queries=QUERY_CAP_M)
        for system in make_systems()
    }


@pytest.fixture(scope="session")
def evaluations_spider(spider):
    """All three systems evaluated on Spider (Figure 4c)."""
    return {
        system.name: evaluate_system(system, spider)
        for system in make_systems()
    }
