"""§4.4 — sample efficiency.

The paper runs WarpGate over NextiaJD-S and -M with sample sizes 10, 100,
and 1000 and finds (i) effectiveness within ±1-2% of full values at every k,
(ii) index lookup time cut by up to two orders of magnitude, and (iii)
end-to-end response at interactive speed (< 35 ms/query on S).

Our corpora are row-scaled, so the sample sweep tops out where sampling
saturates the (smaller) columns; the same three claims are asserted in
relative form.
"""

from __future__ import annotations

from repro.core.config import WarpGateConfig
from repro.core.warpgate import WarpGate
from repro.eval.report import render_table
from repro.eval.runner import evaluate_system

SAMPLE_SIZES = (10, 100, 1000)
QUERY_CAP = 50


def run_sweep(corpus):
    """Evaluate WarpGate at full scan and each sample size."""
    results = {}
    results["full"] = evaluate_system(WarpGate(), corpus, max_queries=QUERY_CAP)
    for size in SAMPLE_SIZES:
        system = WarpGate(WarpGateConfig(sample_size=size))
        results[f"sample-{size}"] = evaluate_system(
            system, corpus, max_queries=QUERY_CAP
        )
    return results


def test_sample_efficiency_testbed_s(benchmark, testbed_s):
    results = benchmark.pedantic(run_sweep, args=(testbed_s,), rounds=1, iterations=1)
    rows = []
    for name, evaluation in results.items():
        timing = evaluation.timing
        rows.append(
            (
                name,
                evaluation.precision_at(2),
                evaluation.recall_at(10),
                timing.mean_response_s * 1e3,
                timing.mean_lookup_s * 1e3,
                evaluation.index_report.scanned_bytes // 1024,
            )
        )
    print()
    print(
        render_table(
            ["config", "P@2", "R@10", "e2e ms/q", "lookup ms/q", "scan KB"],
            rows,
            title="Sample efficiency on testbedS (paper: ±1-2% P/R, "
            "lookup -100x, e2e < 35 ms)",
        )
    )

    full = results["full"]
    for size in SAMPLE_SIZES:
        sampled = results[f"sample-{size}"]
        # Effectiveness robust to sampling.  The paper reports ±1-2% with
        # samples of 10-1000 rows out of 209k-row tables (fractions of
        # 0.005%-0.5%); our row-scaled tables make size 10 a far more
        # aggressive cut (~1.3% of rows but most of the distinct values
        # gone), so its band is wider.
        tolerance = 0.15 if size == 10 else 0.06
        for k in (2, 3, 5, 10):
            assert abs(full.precision_at(k) - sampled.precision_at(k)) <= tolerance
            assert abs(full.recall_at(k) - sampled.recall_at(k)) <= tolerance
        # Sampling reduces metered warehouse bytes.
        assert (
            sampled.index_report.scanned_bytes < full.index_report.scanned_bytes
        )
    # Aggressive sampling brings end-to-end latency to interactive speed.
    fast = results["sample-10"].timing
    assert fast.mean_response_s < 0.050  # < 50 ms/query
    assert fast.mean_response_s <= full.timing.mean_response_s
