"""§5.2.3 — block-and-verify search backends.

The paper proposes pivot-based filtering (after PEXESO) as a future search
optimization.  This benchmark runs the three interchangeable backends —
banded SimHash LSH (production), exact scan (verification arm), and the
pivot filter — over the same embeddings and compares result quality and
lookup latency, plus the pivot filter's prune rate.
"""

from __future__ import annotations

import numpy as np

from repro._util import rng_for
from repro.core.config import WarpGateConfig
from repro.core.warpgate import WarpGate
from repro.eval.report import render_table
from repro.eval.runner import evaluate_system
from repro.index.exact import ExactCosineIndex
from repro.index.lsh import SimHashLSHIndex
from repro.index.pivot import PivotFilterIndex

QUERY_CAP = 40
BACKENDS = ("lsh", "exact", "pivot")


def run_backends(corpus):
    return {
        backend: evaluate_system(
            WarpGate(WarpGateConfig(search_backend=backend)),
            corpus,
            max_queries=QUERY_CAP,
        )
        for backend in BACKENDS
    }


def test_search_backends_agree_and_compare(benchmark, testbed_s):
    results = benchmark.pedantic(
        run_backends, args=(testbed_s,), rounds=1, iterations=1
    )
    rows = [
        (
            backend,
            evaluation.precision_at(2),
            evaluation.recall_at(10),
            evaluation.timing.mean_lookup_s * 1e3,
        )
        for backend, evaluation in results.items()
    ]
    print()
    print(
        render_table(
            ["backend", "P@2", "R@10", "lookup ms/q"],
            rows,
            title="§5.2.3 search backends on testbedS",
        )
    )

    exact = results["exact"]
    # The pivot filter is lossless: identical effectiveness to exact search.
    assert results["pivot"].precision_at(2) == exact.precision_at(2)
    assert results["pivot"].recall_at(10) == exact.recall_at(10)
    # LSH is a close approximation of the exact results.
    assert abs(results["lsh"].recall_at(10) - exact.recall_at(10)) < 0.05


def test_pivot_prunes_verifications(benchmark):
    """Micro-level: the filter skips most exact distance computations."""
    dim, n_points = 64, 2_000
    rng = rng_for("pivot-bench")
    # Clustered data (like real column embeddings): 20 domain clusters.
    centers = rng.standard_normal((20, dim))
    centers /= np.linalg.norm(centers, axis=1, keepdims=True)
    index = PivotFilterIndex(dim, n_pivots=16, threshold=0.8)
    for point in range(n_points):
        center = centers[point % 20]
        vector = center + 0.1 * rng.standard_normal(dim)
        index.add(point, vector / np.linalg.norm(vector))
    index.build()
    query = centers[0]

    benchmark(index.query, query, 10)

    index.query(query, 10)
    print(f"\npivot filter prune rate: {index.prune_rate:.1%} of {n_points} vectors")
    assert index.prune_rate > 0.5


def test_lsh_candidate_pruning_at_scale(benchmark):
    """The LSH layer's reason to exist: sublinear candidate generation.

    At warehouse scale (tens of thousands of columns) the probe touches a
    vanishing fraction of the index.  Wall-clock comparison against the
    numpy full scan is reported but not asserted — on a few thousand
    vectors a vectorized matmul is competitive with any index, which is
    exactly the paper's point that lookup is not the bottleneck.
    """
    dim, n_points = 64, 20_000
    rng = rng_for("lsh-vs-exact")
    matrix = rng.standard_normal((n_points, dim))
    matrix /= np.linalg.norm(matrix, axis=1, keepdims=True)
    lsh = SimHashLSHIndex(dim, threshold=0.8)
    exact = ExactCosineIndex(dim)
    for point in range(n_points):
        lsh.add(point, matrix[point])
        exact.add(point, matrix[point])
    query = matrix[0]
    exact.query(query, 10)  # materialize the matrix outside the timer

    import time

    start = time.perf_counter()
    for _ in range(50):
        exact.query(query, 10, threshold=0.8)
    exact_time = time.perf_counter() - start

    result = benchmark(lsh.query, query, 10)
    assert result and result[0][0] == 0

    start = time.perf_counter()
    for _ in range(50):
        lsh.query(query, 10)
    lsh_time = time.perf_counter() - start
    print(
        f"\nlookup over {n_points} vectors: exact {exact_time / 50 * 1e3:.2f} ms, "
        f"lsh {lsh_time / 50 * 1e3:.2f} ms "
        f"(lsh candidates: {lsh.last_candidate_count})"
    )
    # The probe inspects a small sub-universe of the index (paper §3.1.2),
    # and its size matches banding theory for uncorrelated vectors
    # (1 - (1 - 2^-rows)^bands ≈ 6% at the default 16x8 layout).
    observed_rate = lsh.last_candidate_count / n_points
    expected_rate = lsh.expected_candidate_rate(0.0)
    assert observed_rate < 2.0 * expected_rate
    assert observed_rate < 0.15
