"""§5.2.1 — contextual embeddings ablation.

The paper proposes blending table context (sibling columns) into column
embeddings.  The measurable prediction: ambiguous columns — code/id columns
whose *values* look alike everywhere — become separable by their context,
while same-domain joinable pairs keep their similarity.

This benchmark builds the canonical hard case (identical code columns in an
orders-like table vs a stocks-like table, plus a genuinely joinable twin)
at several context weights and reports the separation gained.
"""

from __future__ import annotations

from repro.embedding.contextual import ContextualColumnEncoder
from repro.embedding.encoder import ColumnEncoder
from repro.embedding.registry import get_model
from repro.eval.report import render_table
from repro.storage.column import Column
from repro.storage.table import Table

WEIGHTS = (0.0, 0.1, 0.2, 0.4)


def build_tables():
    codes = [f"x-{i:03d}" for i in range(50)]
    orders = Table(
        "orders",
        [
            Column("code", list(codes)),
            Column("ship_city", ["boston", "chicago"] * 25),
            Column("carrier", ["fedex", "ups"] * 25),
        ],
    )
    orders_twin = Table(
        "orders_archive",
        [
            Column("code", list(codes)),
            Column("ship_city", ["denver", "boston"] * 25),
            Column("carrier", ["usps", "fedex"] * 25),
        ],
    )
    stocks = Table(
        "stocks",
        [
            Column("code", list(codes)),  # same values, different world
            Column("ticker_name", ["acme corp", "globex inc"] * 25),
            Column("close_price", [1.5, 2.5] * 25),
        ],
    )
    return orders, orders_twin, stocks


def run_sweep():
    base = ColumnEncoder(get_model("webtable"))
    orders, twin, stocks = build_tables()
    rows = []
    for weight in WEIGHTS:
        encoder = ContextualColumnEncoder(base, context_weight=weight)
        orders_vec = encoder.encode_in_table(orders.column("code"), orders)
        twin_vec = encoder.encode_in_table(twin.column("code"), twin)
        stocks_vec = encoder.encode_in_table(stocks.column("code"), stocks)
        rows.append(
            (
                weight,
                float(orders_vec @ twin_vec),   # should stay high
                float(orders_vec @ stocks_vec),  # should drop
            )
        )
    return rows


def test_contextual_embeddings_disambiguate(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print()
    print(
        render_table(
            ["context weight", "joinable twin cos", "false friend cos"],
            rows,
            title="§5.2.1 contextual embeddings: identical code columns, "
            "different table contexts",
        )
    )
    by_weight = {row[0]: row for row in rows}
    # Without context the false friend is indistinguishable from the twin.
    assert by_weight[0.0][2] > 0.99
    # Context separates the false friend monotonically with the weight...
    false_cosines = [row[2] for row in rows]
    assert all(a >= b - 1e-9 for a, b in zip(false_cosines, false_cosines[1:]))
    assert by_weight[0.4][2] < 0.9
    # ...while the genuinely joinable twin stays close.
    assert by_weight[0.4][1] > by_weight[0.4][2]
    assert by_weight[0.4][1] > 0.9
