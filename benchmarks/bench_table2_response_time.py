"""Table 2 — end-to-end query response time (seconds/query, k=10).

Published table (EC2 p3.8xlarge, full-size testbeds)::

              Aurum    D3L     WarpGate (lookup)
    testbedS  0.18     4.77    3.12 (1.04)
    testbedM  0.03     57.69   38.73 (8.39)

Shape criteria reproduced here (absolute values differ — our testbeds are
row-scaled and the machine is different):

* Aurum is orders of magnitude faster per query (graph retrieval only);
* D3L is the slowest (five evidences per query);
* WarpGate's index lookup is a minority share of its end-to-end time —
  loading and embedding dominate, the paper's central efficiency point;
* response time grows roughly linearly with table size (S -> M).
"""

from __future__ import annotations

from repro.eval.report import render_table

PAPER_ROWS = [
    ("testbedS", 0.18, 4.77, "3.12 (1.04)"),
    ("testbedM", 0.03, 57.69, "38.73 (8.39)"),
]


def test_table2_query_response_time(benchmark, evaluations_s, evaluations_m):
    rows = benchmark.pedantic(
        lambda: [
            (
                corpus_name,
                evals["aurum"].timing.mean_response_s,
                evals["d3l"].timing.mean_response_s,
                evals["warpgate"].timing.table2_cell(),
            )
            for corpus_name, evals in (
                ("testbedS", evaluations_s),
                ("testbedM", evaluations_m),
            )
        ],
        rounds=1,
        iterations=1,
    )
    print()
    print(
        render_table(
            ["corpus", "aurum s/q", "d3l s/q", "warpgate s/q (lookup)"],
            rows,
            title="Table 2: end-to-end query response time (ours)",
        )
    )
    print(
        render_table(
            ["corpus", "aurum s/q", "d3l s/q", "warpgate s/q (lookup)"],
            PAPER_ROWS,
            title="Table 2: published values (paper testbeds, EC2)",
        )
    )

    for evals in (evaluations_s, evaluations_m):
        aurum = evals["aurum"].timing
        d3l = evals["d3l"].timing
        warpgate = evals["warpgate"].timing
        # Aurum is at least an order of magnitude faster than WarpGate.
        assert aurum.mean_response_s < 0.1 * warpgate.mean_response_s
        # D3L is the slowest system.
        assert d3l.mean_response_s > warpgate.mean_response_s
        # WarpGate's lookup is a minority of end-to-end response time
        # (the paper reports < 25% on S and < 13% on M).
        assert warpgate.lookup_fraction < 0.5

    # Response time grows with table size: testbedM rows ~ 4x testbedS rows.
    s_time = evaluations_s["warpgate"].timing.mean_response_s
    m_time = evaluations_m["warpgate"].timing.mean_response_s
    assert m_time > 1.5 * s_time
