"""§4.3.3 — ad-hoc discovery in the Sigma Sample Database (Joey's story).

The paper walks a business user's flow: query ACCOUNT.Name, get LEAD.Company
(same database) and INDUSTRIES."Company Name" (cross-database, differently
formatted) among the top recommendations, then chain INDUSTRIES.Ticker to
the STOCKS price tables.  This benchmark regenerates the corpus, replays the
flow, and measures per-query latency on the ~100-table warehouse.
"""

from __future__ import annotations

from repro.core.lookup import LookupService
from repro.core.warpgate import WarpGate
from repro.datasets.sigma import JOEY_QUERY
from repro.eval.report import render_table
from repro.storage.schema import ColumnRef

INDUSTRIES_NAME = ColumnRef("STOCKS", "INDUSTRIES", "Company_Name")
LEAD_COMPANY = ColumnRef("SALESFORCE", "LEAD", "Company")
INDUSTRIES_TICKER = ColumnRef("STOCKS", "INDUSTRIES", "Ticker")
PRICES_TICKER = ColumnRef("STOCKS", "PRICES", "Ticker")


def test_sigma_joey_discovery(benchmark, sigma):
    """Latency on the full ~100-table warehouse (with snapshot copies)."""
    system = WarpGate()
    system.index_corpus(sigma.connector())
    query = ColumnRef(*JOEY_QUERY)

    result = benchmark(system.search, query, 10)

    # On the snapshot-padded warehouse, copies of ACCOUNT/CONTACT dominate
    # the very top (they are the best joins!); the cross-database INDUSTRIES
    # candidate must still surface within a browsable window.
    wide = system.search(query, 25)
    assert INDUSTRIES_NAME in wide.refs
    assert all(candidate.score >= 0.7 for candidate in result.candidates)


def test_sigma_joey_recommendations(benchmark):
    """The Figure 3 walkthrough on the de-duplicated corpus."""
    from repro.datasets.sigma import generate_sigma_sample_database

    corpus = generate_sigma_sample_database(with_snapshots=False)
    system = WarpGate()
    system.index_corpus(corpus.connector())
    query = ColumnRef(*JOEY_QUERY)
    service = LookupService(system)

    recommendations = benchmark.pedantic(
        service.recommend, args=(query,), kwargs={"k": 5}, rounds=1, iterations=1
    )
    rows = [
        (rec.rank, str(rec.candidate), rec.score, service.match_rate(query, rec.candidate))
        for rec in recommendations
    ]
    print()
    print(
        render_table(
            ["rank", "candidate", "similarity", "match rate"],
            rows,
            title="§4.3.3 Joey's query: SALESFORCE.ACCOUNT.Name (top-5)",
        )
    )

    refs = [rec.candidate for rec in recommendations]
    # The paper's two headline recommendations both surface in the top-5.
    assert INDUSTRIES_NAME in refs
    assert LEAD_COMPANY in refs
    # The cross-database candidate is joinable after normalization.
    assert service.match_rate(query, INDUSTRIES_NAME) > 0.9

    # The enrichment chain: add sector info, then tickers join PRICES.
    enriched = service.add_column_via_lookup(
        query, INDUSTRIES_NAME, ["Industry_Group", "Ticker"]
    )
    assert "Industry_Group" in enriched.column_names
    ticker_hop = system.search(INDUSTRIES_TICKER, 5)
    assert PRICES_TICKER in ticker_hop.refs
