"""§5.1 — Sigma customer data scale and the case for sampling.

The paper reports the deployment-scale facts that motivate sampling: the
median customer warehouse has 450 tables (mean 12,700, 25.7 columns/table),
the median table has 7,700 rows (mean 1.7B), and actively sampling that many
tables incurs real usage cost.

This benchmark builds the published fleet profile analytically (a log-normal
fleet calibrated to those medians/means), prices full-scan vs sampled
indexing with the usage-based pricing model, and asserts the conclusion:
sampled indexing is orders of magnitude cheaper, which is why WarpGate
samples passively.
"""

from __future__ import annotations

import numpy as np

from repro._util import rng_for
from repro.eval.report import render_table
from repro.warehouse.cost import PricingModel

# Published fleet statistics (§5.1).
MEDIAN_TABLES = 450
MEAN_TABLES = 12_700
COLUMNS_PER_TABLE = 25.7
MEDIAN_ROWS = 7_700
MEAN_ROWS = 1.7e9
BYTES_PER_CELL = 16  # conservative average serialized cell width
SAMPLE_ROWS = 1_000
N_CUSTOMERS = 2_000


def lognormal_from_median_mean(median: float, mean: float, rng, size: int):
    """Draws matching a target median and mean (mu from median, sigma from
    the mean/median ratio: mean = median * exp(sigma^2 / 2))."""
    mu = np.log(median)
    sigma = np.sqrt(2.0 * np.log(mean / median))
    return rng.lognormal(mu, sigma, size=size)


def simulate_fleet_costs():
    """Dollar cost of indexing each customer's warehouse, both ways."""
    rng = rng_for("fleet-scale", 51)
    pricing = PricingModel()
    tables = lognormal_from_median_mean(MEDIAN_TABLES, MEAN_TABLES, rng, N_CUSTOMERS)
    full_costs = np.empty(N_CUSTOMERS)
    sampled_costs = np.empty(N_CUSTOMERS)
    for customer in range(N_CUSTOMERS):
        n_tables = max(1, int(tables[customer]))
        rows = lognormal_from_median_mean(
            MEDIAN_ROWS, MEAN_ROWS, rng, min(n_tables, 4_000)
        )
        # Price per-table scans; extrapolate when n_tables > simulated rows.
        scale = n_tables / len(rows)
        table_bytes = rows * COLUMNS_PER_TABLE * BYTES_PER_CELL
        sampled_bytes = np.minimum(rows, SAMPLE_ROWS) * COLUMNS_PER_TABLE * BYTES_PER_CELL
        full_costs[customer] = scale * sum(
            pricing.cost_of_scan(int(b)) for b in table_bytes
        )
        sampled_costs[customer] = scale * sum(
            pricing.cost_of_scan(int(b)) for b in sampled_bytes
        )
    return full_costs, sampled_costs, tables, None


def test_warehouse_scale_sampling_economics(benchmark):
    full_costs, sampled_costs, tables, _ = benchmark.pedantic(
        simulate_fleet_costs, rounds=1, iterations=1
    )
    rows = [
        (
            "tables/warehouse",
            float(np.median(tables)),
            float(tables.mean()),
        ),
        (
            "full-scan indexing $",
            float(np.median(full_costs)),
            float(full_costs.mean()),
        ),
        (
            "sampled indexing $",
            float(np.median(sampled_costs)),
            float(sampled_costs.mean()),
        ),
    ]
    print()
    print(
        render_table(
            ["quantity", "median", "mean"],
            rows,
            title="§5.1 fleet-scale indexing cost (usage-based pricing)",
        )
    )
    print(
        f"paper: median 450 / mean 12,700 tables; median 7.7k / mean 1.7B rows"
    )

    # The simulated fleet reproduces the published skew.
    assert 300 < np.median(tables) < 700
    assert tables.mean() > 8 * np.median(tables)
    # Sampling cuts mean indexing cost by orders of magnitude: the paper's
    # argument for passive sampling.
    assert sampled_costs.mean() < 0.05 * full_costs.mean()
    # Even sampled, a 12k-table warehouse costs real money (per-query
    # minimums) - the reason samples should be shared across applications.
    assert sampled_costs.mean() > 0.0
