"""Table 1 — basic statistics of the evaluation datasets.

Regenerates every corpus and prints its statistics next to the published
row.  Table and column counts reproduce the paper; row counts are scaled
down by the documented per-profile factors (the paper's testbedM averages
3.2M rows per table — see ``TestbedProfile.row_scale_note``).
"""

from __future__ import annotations

from repro.datasets.nextiajd import TESTBED_PROFILES, generate_testbed, paper_summary_rows
from repro.datasets.sigma import generate_sigma_sample_database
from repro.datasets.spider import generate_spider_corpus
from repro.eval.report import render_comparison

PAPER_ROWS = list(paper_summary_rows()) + [
    {
        "corpus": "spider",
        "tables": 70,
        "columns": 429,
        "avg_rows": 7_632,
        "queries": 60,
        "avg_answers": 1.1,
    },
    {
        "corpus": "sigma",
        "tables": 98,
        "columns": 1_343,
        "avg_rows": 2_243_932,
        "queries": None,
        "avg_answers": None,
    },
]


def regenerate_all_corpora():
    """Build every corpus of Table 1 and collect its summary row."""
    corpora = [generate_testbed(key) for key in TESTBED_PROFILES]
    corpora.append(generate_spider_corpus())
    corpora.append(generate_sigma_sample_database())
    return corpora


def test_table1_dataset_statistics(benchmark):
    corpora = benchmark.pedantic(regenerate_all_corpora, rounds=1, iterations=1)
    measured = [corpus.summary_row() for corpus in corpora]
    print()
    print(
        render_comparison(
            PAPER_ROWS,
            measured,
            key="corpus",
            title="Table 1: dataset statistics (paper vs regenerated)",
        )
    )

    by_name = {row["corpus"]: row for row in measured}
    # Table counts reproduce the paper exactly for the NextiaJD testbeds.
    for profile in TESTBED_PROFILES.values():
        assert by_name[profile.name]["tables"] == profile.paper_tables
    # Spider and Sigma land within the published ballpark.
    assert 50 <= by_name["spider"]["tables"] <= 95
    assert 60 <= by_name["sigma"]["tables"] <= 130
    # Queries exist with small answer sets, as in the paper.
    for key in ("testbedXS", "testbedS", "testbedM", "testbedL"):
        assert by_name[key]["queries"] > 10
        assert 1.0 < by_name[key]["avg_answers"] < 8.0
    assert 1.0 <= by_name["spider"]["avg_answers"] < 2.0
