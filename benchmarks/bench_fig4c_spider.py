"""Figure 4(c) — PK/FK detection on Spider.

Paper shape: the embedding measure alone (WarpGate) compares favorably
against the ensemble (D3L) and outperforms the syntactic-only approach
(Aurum) by a large margin; Spider queries are fast for every system.
"""

from __future__ import annotations

from repro.eval.report import render_pr_figure

PAPER_CURVE_NOTE = (
    "paper (approx): warpgate P@2=0.45 R@10=0.95 | d3l P@2=0.42 R@10=0.90 "
    "(recall jump k=5->10 via name evidence) | aurum far below"
)


def test_fig4c_pkfk_detection_spider(benchmark, evaluations_spider):
    curves = benchmark.pedantic(
        lambda: {name: ev.curve for name, ev in evaluations_spider.items()},
        rounds=1,
        iterations=1,
    )
    print()
    print(render_pr_figure(curves, title="Figure 4(c): Spider top-k P/R"))
    print(PAPER_CURVE_NOTE)

    warpgate = evaluations_spider["warpgate"]
    d3l = evaluations_spider["d3l"]
    aurum = evaluations_spider["aurum"]

    # "Compares favorably" against D3L: within a small margin on precision,
    # at least on par on recall at k=10.
    for k in (2, 3, 5, 10):
        assert warpgate.precision_at(k) > d3l.precision_at(k) - 0.05
    assert warpgate.recall_at(10) >= d3l.recall_at(10) - 0.02
    # "Outperforms Aurum by a large margin."
    assert warpgate.precision_at(2) > 1.8 * aurum.precision_at(2)
    assert warpgate.recall_at(10) > 1.8 * aurum.recall_at(10)
    # Embedding search nearly saturates recall on declared key joins.
    assert warpgate.recall_at(10) > 0.9
    # All systems answer Spider queries quickly (small corpus): the paper
    # reports < 2 s for *all* queries; allow generous headroom per query.
    for evaluation in evaluations_spider.values():
        assert evaluation.timing.mean_response_s < 0.5
