"""Failure-injection tests: the system degrades loudly, not silently.

The second half of this module is the durability *crash matrix*: for
every crash point registered in :mod:`repro.durability.faultpoints`,
simulate the process dying at exactly that instruction and assert that
recovery restores the acknowledged state — no acknowledged mutation
lost, no phantom mutation invented (beyond the durable-but-in-flight
record WAL semantics permit).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro._util import rng_for
from repro.core.config import WarpGateConfig
from repro.core.persistence import load_index, save_index
from repro.core.warpgate import WarpGate
from repro.durability import (
    CRASH_POINTS,
    DurableIndexStore,
    InjectedCrash,
    faultpoints,
    fsck_store,
)
from repro.errors import (
    CsvFormatError,
    InvalidQueryError,
    ReproError,
    ScanBudgetExceededError,
)
from repro.storage.column import Column
from repro.storage.csv_codec import read_csv
from repro.storage.schema import ColumnRef
from repro.storage.table import Table
from repro.storage.types import DataType
from repro.warehouse.catalog import Warehouse
from repro.warehouse.connector import WarehouseConnector


class TestMalformedCsv:
    @pytest.mark.parametrize(
        "payload",
        [
            "",
            "   \n  ",
            "a,b\n1\n",  # ragged
            "a,,c\n1,2,3\n",  # blank header
        ],
    )
    def test_rejected_with_csv_error(self, payload):
        with pytest.raises(CsvFormatError):
            read_csv(payload, "bad")

    def test_error_names_the_table(self):
        with pytest.raises(CsvFormatError) as excinfo:
            read_csv("a,b\n1\n", "orders")
        assert "orders" in str(excinfo.value)


class TestScanBudgetMidIndexing:
    def test_budget_exhaustion_surfaces(self, toy_warehouse):
        """A byte budget that dies mid-indexing raises, never truncates."""
        connector = WarehouseConnector(toy_warehouse, scan_budget_bytes=100)
        system = WarpGate()
        with pytest.raises(ScanBudgetExceededError):
            system.index_corpus(connector)

    def test_partial_state_not_searchable(self, toy_warehouse):
        connector = WarehouseConnector(toy_warehouse, scan_budget_bytes=100)
        system = WarpGate()
        with pytest.raises(ScanBudgetExceededError):
            system.index_corpus(connector)
        from repro.errors import NotIndexedError

        with pytest.raises(NotIndexedError):
            system.search(ColumnRef("db", "customers", "company"), 3)


class TestDegenerateColumns:
    def _index(self, *columns: Column) -> WarpGate:
        warehouse = Warehouse("degenerate")
        warehouse.add_table("db", Table("weird", list(columns)))
        warehouse.add_table(
            "db",
            Table("normal", [Column("name", ["Acme Corp", "Globex Inc", "Umbrella"])]),
        )
        system = WarpGate(WarpGateConfig(threshold=0.0))
        system.index_corpus(WarehouseConnector(warehouse))
        return system

    def test_all_null_column_skipped_not_crashed(self):
        system = self._index(
            Column("empty", [None, None, None], DataType.STRING),
            Column("ok", ["x", "y", "z"]),
        )
        # The all-null column embeds to zero and is not indexed.
        assert not system.is_column_indexed(ColumnRef("db", "weird", "empty"))
        assert system.is_column_indexed(ColumnRef("db", "weird", "ok"))

    def test_all_null_query_returns_empty(self):
        system = self._index(
            Column("empty", [None, None, None], DataType.STRING),
            Column("ok", ["x", "y", "z"]),
        )
        result = system.search(ColumnRef("db", "weird", "empty"), 5)
        assert result.candidates == []

    def test_punctuation_only_column_handled(self):
        system = self._index(Column("punct", ["!!!", "---", "..."]))
        result = system.search(ColumnRef("db", "weird", "punct"), 5)
        assert isinstance(result.candidates, list)

    def test_single_row_column_indexable(self):
        system = self._index(Column("one", ["acme"]), Column("pad", ["x"]))
        assert system.is_column_indexed(ColumnRef("db", "weird", "one"))


class TestLookupMisuse:
    def test_unknown_refs_raise_invalid_query(self, toy_connector):
        from repro.core.lookup import LookupService

        system = WarpGate(WarpGateConfig(threshold=0.3))
        system.index_corpus(toy_connector)
        service = LookupService(system)
        with pytest.raises(InvalidQueryError):
            service.add_column_via_lookup(
                ColumnRef("db", "customers", "company"),
                ColumnRef("db", "vendors", "vendor_name"),
                ["no_such_column"],
            )

    def test_everything_is_catchable_as_repro_error(self, toy_connector):
        system = WarpGate()
        try:
            system.search(ColumnRef("db", "customers", "company"), 3)
        except ReproError:
            pass  # NotIndexedError is a ReproError: one catch at boundaries
        else:
            pytest.fail("expected a ReproError")


# --- durability crash matrix ---------------------------------------------------

DIM = 16


@pytest.fixture(autouse=True)
def _clean_faultpoints():
    yield
    faultpoints.disarm_all()


def _make_engine(n: int = 8) -> tuple[WarpGate, list[ColumnRef]]:
    matrix = rng_for("crash-matrix").standard_normal((n, DIM))
    matrix /= np.linalg.norm(matrix, axis=1, keepdims=True)
    refs = [ColumnRef("db", f"t{i // 4}", f"c{i % 4}") for i in range(n)]
    system = WarpGate(WarpGateConfig(model_name="hashing", dim=DIM))
    system._index.bulk_load(refs, matrix.astype(np.float32))
    system._indexed = True
    return system, refs


def _vec(key: object) -> np.ndarray:
    vector = rng_for("crash-matrix-vec", key).standard_normal(DIM)
    return (vector / np.linalg.norm(vector)).astype(np.float32)


def _recover_state(directory) -> dict[ColumnRef, np.ndarray]:
    with DurableIndexStore(directory, fsync="never") as store:
        _config, refs, vectors, _report = store.recover()
    return {ref: vectors[position] for position, ref in enumerate(refs)}


def _assert_state(
    actual: dict[ColumnRef, np.ndarray], expected: dict[ColumnRef, np.ndarray]
) -> None:
    assert set(actual) == set(expected)
    for ref, vector in expected.items():
        # Bitwise: segments carry the arena bytes verbatim and WAL replay
        # decodes the exact float32 payload — recovery never re-derives.
        assert np.array_equal(actual[ref], vector), f"vector drift at {ref}"


class TestDurabilityCrashMatrix:
    """Kill the store at every registered point; recover; compare oracles."""

    WAL_APPEND_POINTS = tuple(
        point for point in CRASH_POINTS if point.startswith("wal.append.")
    )
    CHECKPOINT_POINTS = tuple(
        point
        for point in CRASH_POINTS
        if point.startswith(("segment.seal.", "manifest.publish.", "wal.truncate."))
    )
    ARTIFACT_POINTS = tuple(
        point for point in CRASH_POINTS if point.startswith("artifact.save.")
    )

    def test_matrix_covers_every_registered_point(self):
        """A new fire site must land in exactly one matrix bucket."""
        covered = self.WAL_APPEND_POINTS + self.CHECKPOINT_POINTS + self.ARTIFACT_POINTS
        assert sorted(covered) == sorted(CRASH_POINTS)

    def _base(self, tmp_path):
        """Checkpointed base plus one acknowledged mutation."""
        system, refs = _make_engine()
        store = DurableIndexStore(tmp_path / "store", fsync="always")
        store.checkpoint(system)
        oracle = {ref: np.asarray(system.vector_of(ref)) for ref in refs}
        ref_a = refs[0]
        system._index.update(ref_a, _vec("A"))
        vector_a = np.asarray(system.vector_of(ref_a))
        store.log_upsert([ref_a], vector_a[None, :])  # acknowledged
        oracle[ref_a] = vector_a
        return system, refs, store, oracle

    @pytest.mark.parametrize("point", WAL_APPEND_POINTS)
    def test_crash_during_append_keeps_acknowledged_state(self, tmp_path, point):
        system, refs, store, oracle = self._base(tmp_path)
        ref_b = refs[1]
        system._index.update(ref_b, _vec("B"))
        in_flight = np.asarray(system.vector_of(ref_b))
        faultpoints.crash_at(point)
        with pytest.raises(InjectedCrash):
            store.log_upsert([ref_b], in_flight[None, :])
        faultpoints.disarm_all()
        store.close()
        recovered = _recover_state(tmp_path / "store")
        expected = dict(oracle)
        if point != "wal.append.before_write":
            # The frame reached the file before the simulated death, so
            # replay legitimately includes the in-flight record; standard
            # WAL semantics allow a durable-but-unacknowledged suffix.
            expected[ref_b] = in_flight
        _assert_state(recovered, expected)
        assert not fsck_store(tmp_path / "store")["problems"]

    @pytest.mark.parametrize("point", CHECKPOINT_POINTS)
    def test_crash_during_checkpoint_loses_nothing(self, tmp_path, point):
        system, refs, store, oracle = self._base(tmp_path)
        ref_b = refs[1]
        system._index.update(ref_b, _vec("B"))
        vector_b = np.asarray(system.vector_of(ref_b))
        store.log_upsert([ref_b], vector_b[None, :])  # acknowledged
        oracle[ref_b] = vector_b
        faultpoints.crash_at(point)
        with pytest.raises(InjectedCrash):
            store.checkpoint(system)
        faultpoints.disarm_all()
        store.close()
        # Whether the crash landed before or after the manifest replace,
        # the acknowledged history must survive — from the old manifest +
        # WAL replay, or from the freshly published segment.
        recovered = _recover_state(tmp_path / "store")
        _assert_state(recovered, oracle)
        assert not fsck_store(tmp_path / "store")["problems"]

    @pytest.mark.parametrize("point", CHECKPOINT_POINTS)
    def test_recovered_store_checkpoints_cleanly_after_crash(self, tmp_path, point):
        """Recovery must yield a store that can absorb the next checkpoint."""
        system, refs, store, oracle = self._base(tmp_path)
        faultpoints.crash_at(point)
        with pytest.raises(InjectedCrash):
            store.checkpoint(system)
        faultpoints.disarm_all()
        store.close()
        from repro.core.persistence import load_index_durable

        recovered, store, _report = load_index_durable(tmp_path / "store")
        store.checkpoint(recovered)
        store.close()
        report = fsck_store(tmp_path / "store")
        assert not report["problems"]
        _assert_state(_recover_state(tmp_path / "store"), oracle)


class TestAtomicArtifactSave:
    """``save_index`` around its ``os.replace``: all-or-nothing on disk."""

    def test_crash_before_replace_preserves_previous_artifact(self, tmp_path):
        system, refs = _make_engine()
        path = tmp_path / "index.npz"
        save_index(system, path)
        system._index.update(refs[0], _vec("clobber"))
        faultpoints.crash_at("artifact.save.before_replace")
        with pytest.raises(InjectedCrash):
            save_index(system, path)
        faultpoints.disarm_all()
        restored = load_index(path)
        assert set(restored.indexed_refs) == set(refs)
        # The half-written temp never replaced the good artifact: the
        # restored vector is the original, not the clobbered one.
        assert not np.array_equal(
            np.asarray(restored.vector_of(refs[0])),
            np.asarray(system.vector_of(refs[0])),
        )

    def test_crash_after_replace_leaves_loadable_artifact(self, tmp_path):
        system, refs = _make_engine()
        path = tmp_path / "index.npz"
        faultpoints.crash_at("artifact.save.after_replace")
        with pytest.raises(InjectedCrash):
            save_index(system, path)
        faultpoints.disarm_all()
        restored = load_index(path)
        assert set(restored.indexed_refs) == set(refs)
