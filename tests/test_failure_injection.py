"""Failure-injection tests: the system degrades loudly, not silently."""

from __future__ import annotations

import pytest

from repro.core.config import WarpGateConfig
from repro.core.warpgate import WarpGate
from repro.errors import (
    CsvFormatError,
    InvalidQueryError,
    ReproError,
    ScanBudgetExceededError,
)
from repro.storage.column import Column
from repro.storage.csv_codec import read_csv
from repro.storage.schema import ColumnRef
from repro.storage.table import Table
from repro.storage.types import DataType
from repro.warehouse.catalog import Warehouse
from repro.warehouse.connector import WarehouseConnector


class TestMalformedCsv:
    @pytest.mark.parametrize(
        "payload",
        [
            "",
            "   \n  ",
            "a,b\n1\n",  # ragged
            "a,,c\n1,2,3\n",  # blank header
        ],
    )
    def test_rejected_with_csv_error(self, payload):
        with pytest.raises(CsvFormatError):
            read_csv(payload, "bad")

    def test_error_names_the_table(self):
        with pytest.raises(CsvFormatError) as excinfo:
            read_csv("a,b\n1\n", "orders")
        assert "orders" in str(excinfo.value)


class TestScanBudgetMidIndexing:
    def test_budget_exhaustion_surfaces(self, toy_warehouse):
        """A byte budget that dies mid-indexing raises, never truncates."""
        connector = WarehouseConnector(toy_warehouse, scan_budget_bytes=100)
        system = WarpGate()
        with pytest.raises(ScanBudgetExceededError):
            system.index_corpus(connector)

    def test_partial_state_not_searchable(self, toy_warehouse):
        connector = WarehouseConnector(toy_warehouse, scan_budget_bytes=100)
        system = WarpGate()
        with pytest.raises(ScanBudgetExceededError):
            system.index_corpus(connector)
        from repro.errors import NotIndexedError

        with pytest.raises(NotIndexedError):
            system.search(ColumnRef("db", "customers", "company"), 3)


class TestDegenerateColumns:
    def _index(self, *columns: Column) -> WarpGate:
        warehouse = Warehouse("degenerate")
        warehouse.add_table("db", Table("weird", list(columns)))
        warehouse.add_table(
            "db",
            Table("normal", [Column("name", ["Acme Corp", "Globex Inc", "Umbrella"])]),
        )
        system = WarpGate(WarpGateConfig(threshold=0.0))
        system.index_corpus(WarehouseConnector(warehouse))
        return system

    def test_all_null_column_skipped_not_crashed(self):
        system = self._index(
            Column("empty", [None, None, None], DataType.STRING),
            Column("ok", ["x", "y", "z"]),
        )
        # The all-null column embeds to zero and is not indexed.
        assert not system.is_column_indexed(ColumnRef("db", "weird", "empty"))
        assert system.is_column_indexed(ColumnRef("db", "weird", "ok"))

    def test_all_null_query_returns_empty(self):
        system = self._index(
            Column("empty", [None, None, None], DataType.STRING),
            Column("ok", ["x", "y", "z"]),
        )
        result = system.search(ColumnRef("db", "weird", "empty"), 5)
        assert result.candidates == []

    def test_punctuation_only_column_handled(self):
        system = self._index(Column("punct", ["!!!", "---", "..."]))
        result = system.search(ColumnRef("db", "weird", "punct"), 5)
        assert isinstance(result.candidates, list)

    def test_single_row_column_indexable(self):
        system = self._index(Column("one", ["acme"]), Column("pad", ["x"]))
        assert system.is_column_indexed(ColumnRef("db", "weird", "one"))


class TestLookupMisuse:
    def test_unknown_refs_raise_invalid_query(self, toy_connector):
        from repro.core.lookup import LookupService

        system = WarpGate(WarpGateConfig(threshold=0.3))
        system.index_corpus(toy_connector)
        service = LookupService(system)
        with pytest.raises(InvalidQueryError):
            service.add_column_via_lookup(
                ColumnRef("db", "customers", "company"),
                ColumnRef("db", "vendors", "vendor_name"),
                ["no_such_column"],
            )

    def test_everything_is_catchable_as_repro_error(self, toy_connector):
        system = WarpGate()
        try:
            system.search(ColumnRef("db", "customers", "company"), 3)
        except ReproError:
            pass  # NotIndexedError is a ReproError: one catch at boundaries
        else:
            pytest.fail("expected a ReproError")
