"""Tests for repro.datasets.quality: the NextiaJD labelling rule."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.datasets.quality import (
    JoinQuality,
    cardinality_proportion,
    compute_ground_truth,
    label_quality,
)
from repro.storage.column import Column
from repro.storage.schema import ColumnRef
from repro.storage.store import ColumnStore
from repro.storage.table import Table


class TestLabelQuality:
    def test_high(self):
        assert label_quality(0.9, 0.5) is JoinQuality.HIGH

    def test_good(self):
        assert label_quality(0.6, 0.15) is JoinQuality.GOOD

    def test_high_requires_proportion(self):
        # C >= 0.75 but K < 0.25 degrades to GOOD.
        assert label_quality(0.9, 0.12) is JoinQuality.GOOD

    def test_moderate(self):
        assert label_quality(0.3, 0.5) is JoinQuality.MODERATE

    def test_poor(self):
        assert label_quality(0.15, 0.01) is JoinQuality.POOR

    def test_none(self):
        assert label_quality(0.05, 0.9) is JoinQuality.NONE

    def test_ordering(self):
        assert JoinQuality.HIGH > JoinQuality.GOOD > JoinQuality.MODERATE

    def test_boundaries_inclusive(self):
        assert label_quality(0.75, 0.25) is JoinQuality.HIGH
        assert label_quality(0.5, 0.1) is JoinQuality.GOOD


unit = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
sizes = st.integers(min_value=0, max_value=1_000_000)


class TestLabelQualityProperties:
    """The labelling rule's algebra, pinned over the whole input space."""

    @given(unit, unit, unit)
    def test_monotone_in_containment(self, low, high, proportion):
        low, high = min(low, high), max(low, high)
        assert label_quality(low, proportion) <= label_quality(high, proportion)

    @given(unit, unit, unit)
    def test_monotone_in_proportion(self, containment, low, high):
        low, high = min(low, high), max(low, high)
        assert label_quality(containment, low) <= label_quality(containment, high)

    @given(unit, unit)
    def test_label_is_a_quality_level(self, containment, proportion):
        assert isinstance(label_quality(containment, proportion), JoinQuality)

    @pytest.mark.parametrize(
        ("level", "containment_floor", "proportion_floor"),
        [
            (JoinQuality.HIGH, 0.75, 0.25),
            (JoinQuality.GOOD, 0.50, 0.10),
            (JoinQuality.MODERATE, 0.25, 0.05),
            (JoinQuality.POOR, 0.10, 0.0),
        ],
    )
    def test_threshold_boundary_exact(self, level, containment_floor, proportion_floor):
        # Floors are inclusive: landing exactly on one grants the level,
        # and any drop below the containment floor loses it.
        assert label_quality(containment_floor, proportion_floor) is level
        assert label_quality(containment_floor - 1e-6, proportion_floor) < level

    @given(sizes, sizes)
    def test_cardinality_proportion_symmetric_and_bounded(self, left, right):
        proportion = cardinality_proportion(left, right)
        assert proportion == cardinality_proportion(right, left)
        assert 0.0 <= proportion <= 1.0

    @given(st.integers(min_value=1, max_value=1_000_000))
    def test_cardinality_proportion_identity(self, size):
        assert cardinality_proportion(size, size) == 1.0

    @given(sizes)
    def test_cardinality_proportion_empty_side_is_zero(self, size):
        assert cardinality_proportion(0, size) == 0.0
        assert cardinality_proportion(size, 0) == 0.0


def store_with(pairs: dict[str, list[str]]) -> ColumnStore:
    store = ColumnStore()
    for table_name, values in pairs.items():
        store.add_table(
            Table(table_name, [Column("col", values)]), database="db"
        )
    return store


class TestComputeGroundTruth:
    def test_identical_columns_labelled_both_ways(self):
        values = [f"v{i}" for i in range(20)]
        store = store_with({"a": values, "b": list(values)})
        truth, queries = compute_ground_truth(store)
        a = ColumnRef("db", "a", "col")
        b = ColumnRef("db", "b", "col")
        assert truth.is_answer(a, b)
        assert truth.is_answer(b, a)
        assert {q.ref for q in queries} == {a, b}

    def test_nested_subsets_directional(self):
        big = [f"v{i}" for i in range(100)]
        small = big[:10]  # contained, but K = 0.1 and C(big->small) = 0.1
        store = store_with({"big": big, "small": small})
        truth, _ = compute_ground_truth(store)
        big_ref = ColumnRef("db", "big", "col")
        small_ref = ColumnRef("db", "small", "col")
        assert truth.is_answer(small_ref, big_ref)  # C=1.0, K=0.1 -> GOOD
        assert not truth.is_answer(big_ref, small_ref)  # C=0.1 -> POOR

    def test_disjoint_columns_not_labelled(self):
        store = store_with(
            {"a": [f"a{i}" for i in range(20)], "b": [f"b{i}" for i in range(20)]}
        )
        truth, queries = compute_ground_truth(store)
        assert len(truth) == 0
        assert queries == []

    def test_same_table_pairs_skipped(self):
        values = [f"v{i}" for i in range(20)]
        store = ColumnStore()
        store.add_table(
            Table("t", [Column("x", values), Column("y", list(values))]),
            database="db",
        )
        truth, _ = compute_ground_truth(store)
        assert len(truth) == 0

    def test_numeric_columns_excluded(self):
        store = ColumnStore()
        store.add_table(Table("a", [Column("n", list(range(50)))]), database="db")
        store.add_table(Table("b", [Column("n", list(range(50)))]), database="db")
        truth, _ = compute_ground_truth(store)
        assert len(truth) == 0

    def test_min_distinct_filters_tiny_columns(self):
        store = store_with({"a": ["x", "y"], "b": ["x", "y"]})
        truth, _ = compute_ground_truth(store, min_distinct=3)
        assert len(truth) == 0

    def test_minimum_quality_high_stricter(self):
        big = [f"v{i}" for i in range(100)]
        small = big[:10]
        store = store_with({"big": big, "small": small})
        good_truth, _ = compute_ground_truth(store, minimum_quality=JoinQuality.GOOD)
        high_truth, _ = compute_ground_truth(store, minimum_quality=JoinQuality.HIGH)
        assert good_truth.total_answers > high_truth.total_answers
