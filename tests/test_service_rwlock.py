"""ReadWriteLock semantics: writer preference, exclusivity, cleanup.

The lock guards every service request (readers) against index mutations
(writers); these tests pin the contract the serving layer depends on:
shared readers, exclusive writers, *writer preference* (a waiting writer
blocks new readers, so sustained reads cannot starve a mutation), and
context-manager release on exception.  The documented non-reentrancy
rule — a thread holding read must not re-acquire while a writer waits —
is verified as observable blocking rather than as a hung test.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.service.rwlock import ReadWriteLock

# Long enough that a thread scheduled to proceed has proceeded; short
# enough that the suite stays fast.  Blocking assertions use joins with
# this timeout, never unbounded waits.
_SETTLE_S = 0.3


def _spawn(target) -> threading.Thread:
    thread = threading.Thread(target=target, daemon=True)
    thread.start()
    return thread


class TestSharedReaders:
    def test_many_readers_hold_concurrently(self):
        lock = ReadWriteLock()
        inside = threading.Barrier(4, timeout=5)

        def reader():
            with lock.read():
                inside.wait()  # all four must be inside at once

        threads = [_spawn(reader) for _ in range(4)]
        for thread in threads:
            thread.join(timeout=5)
        assert not any(thread.is_alive() for thread in threads)

    def test_reader_blocks_writer_until_released(self):
        lock = ReadWriteLock()
        lock.acquire_read()
        acquired = threading.Event()

        def writer():
            with lock.write():
                acquired.set()

        thread = _spawn(writer)
        assert not acquired.wait(_SETTLE_S)  # held read blocks the writer
        lock.release_read()
        assert acquired.wait(5)  # last reader out wakes the writer
        thread.join(timeout=5)


class TestWriterExclusivityAndPreference:
    def test_writer_excludes_readers_and_writers(self):
        lock = ReadWriteLock()
        lock.acquire_write()
        progressed: list[str] = []

        def reader():
            with lock.read():
                progressed.append("read")

        def writer():
            with lock.write():
                progressed.append("write")

        threads = [_spawn(reader), _spawn(writer)]
        time.sleep(_SETTLE_S)
        assert progressed == []  # nobody enters while the writer holds
        lock.release_write()
        for thread in threads:
            thread.join(timeout=5)
        assert sorted(progressed) == ["read", "write"]

    def test_waiting_writer_blocks_new_readers(self):
        """Writer preference: arrivals after a queued writer wait behind it."""
        lock = ReadWriteLock()
        lock.acquire_read()
        order: list[str] = []
        writer_in = threading.Event()

        def writer():
            lock.acquire_write()
            writer_in.set()
            order.append("writer")
            lock.release_write()

        def late_reader():
            lock.acquire_read()
            order.append("reader")
            lock.release_read()

        writer_thread = _spawn(writer)
        time.sleep(_SETTLE_S / 2)  # let the writer register as waiting
        reader_thread = _spawn(late_reader)
        # The late reader must NOT slip past the waiting writer even
        # though a reader currently holds the lock (shared access would
        # otherwise be compatible) — this is what prevents writer
        # starvation under sustained read traffic.
        time.sleep(_SETTLE_S)
        assert order == []
        lock.release_read()
        writer_thread.join(timeout=5)
        reader_thread.join(timeout=5)
        assert order == ["writer", "reader"]

    def test_reentrant_read_blocks_while_writer_waits(self):
        """The documented non-reentrancy hazard is real, observable blocking.

        A thread holding read that re-acquires read while a writer waits
        deadlocks (the writer waits for readers to drain; the re-acquire
        waits for the writer).  The serving layer's discipline — never
        nest acquisitions — exists because of exactly this; the test
        pins the behavior so a future "fix" that silently grants nested
        reads (reintroducing writer starvation) fails loudly.
        """
        lock = ReadWriteLock()
        lock.acquire_read()
        _spawn(lock.acquire_write)  # parks as the waiting writer
        time.sleep(_SETTLE_S / 2)
        nested = threading.Event()

        def reacquire():
            lock.acquire_read()
            nested.set()

        _spawn(reacquire)
        assert not nested.wait(_SETTLE_S)  # nested read is NOT granted
        # Unwind: drop the original read; writer runs, then the nested
        # reader; everything drains so no daemon thread leaks mid-wait.
        lock.release_read()
        time.sleep(_SETTLE_S / 2)
        lock.release_write()
        assert nested.wait(5)
        lock.release_read()


class TestContextManagerCleanup:
    def test_read_released_on_exception(self):
        lock = ReadWriteLock()
        with pytest.raises(RuntimeError):
            with lock.read():
                raise RuntimeError("boom")
        lock.acquire_write()  # only possible if the read was released
        lock.release_write()

    def test_write_released_on_exception(self):
        lock = ReadWriteLock()
        with pytest.raises(RuntimeError):
            with lock.write():
                raise RuntimeError("boom")
        lock.acquire_read()  # only possible if the write was released
        lock.release_read()
