"""Tests for repro.baselines.aurum."""

from __future__ import annotations

import pytest

from repro.baselines.aurum import Aurum
from repro.errors import NotIndexedError
from repro.storage.schema import ColumnRef


def company_ref() -> ColumnRef:
    return ColumnRef("db", "customers", "company")


def vendor_ref() -> ColumnRef:
    return ColumnRef("db", "vendors", "vendor_name")


@pytest.fixture()
def indexed_aurum(toy_connector) -> Aurum:
    system = Aurum(edge_threshold=0.5)
    system.index_corpus(toy_connector)
    return system


class TestConstruction:
    def test_threshold_validated(self):
        with pytest.raises(ValueError):
            Aurum(edge_threshold=1.5)

    def test_search_before_index_raises(self):
        with pytest.raises(NotIndexedError):
            Aurum().search(company_ref())


class TestIndexing:
    def test_graph_built(self, indexed_aurum):
        report_nodes = indexed_aurum.graph.number_of_nodes()
        assert report_nodes == 8
        # The identical company/vendor_name extents must be linked.
        assert indexed_aurum.graph.has_edge(company_ref(), vendor_ref())

    def test_index_report(self, toy_connector):
        system = Aurum(edge_threshold=0.5)
        report = system.index_corpus(toy_connector)
        assert report.columns_indexed == 8
        assert report.notes["edges"] == system.edge_count
        assert report.scanned_bytes > 0

    def test_edges_thresholded(self, indexed_aurum):
        for _, _, data in indexed_aurum.graph.edges(data=True):
            assert data["weight"] >= 0.5


class TestSearch:
    def test_finds_identical_extent(self, indexed_aurum):
        result = indexed_aurum.search(company_ref(), 5)
        assert vendor_ref() in result.refs

    def test_no_data_loading_at_query_time(self, indexed_aurum):
        scans_before = indexed_aurum.connector.stats.scan_count
        indexed_aurum.search(company_ref(), 5)
        assert indexed_aurum.connector.stats.scan_count == scans_before

    def test_query_latency_is_lookup_only(self, indexed_aurum):
        timing = indexed_aurum.search(company_ref(), 5).timing
        assert timing.load_s == 0.0
        assert timing.embed_s == 0.0
        assert timing.lookup_s > 0.0

    def test_unknown_query_returns_empty(self, indexed_aurum):
        result = indexed_aurum.search(ColumnRef("db", "zzz", "zzz"), 5)
        assert result.candidates == []

    def test_same_table_excluded(self, indexed_aurum):
        result = indexed_aurum.search(company_ref(), 10)
        assert all(not ref.same_table(company_ref()) for ref in result.refs)

    def test_misses_low_jaccard_pairs(self, toy_connector):
        """High threshold removes edges - the paper's recall ceiling."""
        system = Aurum(edge_threshold=0.99)
        # Perturb: vendors share only 2 of 5 companies.
        warehouse = toy_connector.warehouse
        from repro.storage.column import Column
        from repro.storage.table import Table

        partial = Table(
            "vendors",
            [
                Column("vendor_id", [10, 11, 12, 13, 14]),
                Column(
                    "vendor_name",
                    [
                        "Acme Dynamics Corp",
                        "Global Logistics Inc",
                        "Different One",
                        "Different Two",
                        "Different Three",
                    ],
                ),
                Column("city", ["a", "b", "c", "d", "e"]),
            ],
        )
        warehouse.database("db").add_table(partial)
        system.index_corpus(toy_connector)
        result = system.search(company_ref(), 5)
        assert vendor_ref() not in result.refs


class TestHowSimilar:
    def test_identical_extents(self, indexed_aurum):
        assert indexed_aurum.how_similar(company_ref(), vendor_ref()) == pytest.approx(
            1.0
        )

    def test_unprofiled_is_zero(self, indexed_aurum):
        assert indexed_aurum.how_similar(company_ref(), ColumnRef("x", "y", "z")) == 0.0
