"""Tests for repro.core.warpgate: the system itself."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import WarpGateConfig
from repro.core.profiles import EmbeddingCache
from repro.core.warpgate import WarpGate
from repro.errors import NotIndexedError
from repro.storage.schema import ColumnRef
from repro.warehouse.connector import WarehouseConnector


def company_ref() -> ColumnRef:
    return ColumnRef("db", "customers", "company")


def vendor_ref() -> ColumnRef:
    return ColumnRef("db", "vendors", "vendor_name")


@pytest.fixture()
def toy_warpgate(toy_connector) -> WarpGate:
    system = WarpGate(WarpGateConfig(threshold=0.3))
    system.index_corpus(toy_connector)
    return system


class TestIndexing:
    def test_index_report_counts(self, toy_connector):
        system = WarpGate()
        report = system.index_corpus(toy_connector)
        # toy warehouse: 8 eligible columns (strings, ints, floats).
        assert report.columns_indexed == 8
        assert report.columns_skipped == 0
        assert report.scanned_bytes > 0
        assert report.charged_dollars > 0
        assert report.simulated_load_seconds > 0
        assert report.notes["backend"] == "lsh"

    def test_search_before_index_raises(self):
        with pytest.raises(NotIndexedError):
            WarpGate().search(company_ref(), 3)

    def test_connector_property_before_index_raises(self):
        with pytest.raises(NotIndexedError):
            _ = WarpGate().connector

    def test_sampling_config_reduces_scan(self, toy_warehouse):
        full = WarpGate()
        full.index_corpus(WarehouseConnector(toy_warehouse))
        sampled = WarpGate(WarpGateConfig(sample_size=2))
        report = sampled.index_corpus(WarehouseConnector(toy_warehouse))
        full_report_bytes = full.connector.stats.scanned_bytes
        assert report.scanned_bytes < full_report_bytes

    def test_indexed_count(self, toy_warpgate):
        assert toy_warpgate.indexed_count == 8


class TestSearch:
    def test_finds_joinable_column(self, toy_warpgate):
        result = toy_warpgate.search(company_ref(), 3)
        assert result.refs[0] == vendor_ref()
        assert result.candidates[0].score > 0.9

    def test_excludes_own_table(self, toy_warpgate):
        result = toy_warpgate.search(company_ref(), 10)
        assert all(ref.table_key != ("db", "customers") for ref in result.refs)

    def test_k_respected(self, toy_warpgate):
        result = toy_warpgate.search(company_ref(), 1)
        assert len(result) <= 1

    def test_default_k_from_config(self, toy_connector):
        system = WarpGate(WarpGateConfig(default_k=2, threshold=-1.0))
        system.index_corpus(toy_connector)
        assert len(system.search(company_ref())) <= 2

    def test_timing_populated(self, toy_warpgate):
        timing = toy_warpgate.search(company_ref(), 3).timing
        assert timing.load_simulated_s > 0
        assert timing.embed_s > 0
        assert timing.lookup_s > 0

    def test_threshold_override(self, toy_warpgate):
        strict = toy_warpgate.search(company_ref(), 10, threshold=0.999)
        loose = toy_warpgate.search(company_ref(), 10, threshold=-1.0)
        assert len(strict) <= len(loose)

    def test_deterministic_results(self, toy_warpgate):
        first = toy_warpgate.search(company_ref(), 5).refs
        second = toy_warpgate.search(company_ref(), 5).refs
        assert first == second


class TestBackends:
    @pytest.mark.parametrize("backend", ["lsh", "exact", "pivot"])
    def test_all_backends_find_the_join(self, toy_connector, backend):
        system = WarpGate(WarpGateConfig(search_backend=backend, threshold=0.3))
        system.index_corpus(toy_connector)
        result = system.search(company_ref(), 3)
        assert vendor_ref() in result.refs

    def test_lsh_and_exact_agree_on_toy(self, toy_warehouse):
        lsh = WarpGate(WarpGateConfig(search_backend="lsh", threshold=0.3))
        lsh.index_corpus(WarehouseConnector(toy_warehouse))
        exact = WarpGate(WarpGateConfig(search_backend="exact", threshold=0.3))
        exact.index_corpus(WarehouseConnector(toy_warehouse))
        assert lsh.search(company_ref(), 3).refs == exact.search(company_ref(), 3).refs


class TestCache:
    def test_cache_skips_load(self, toy_warehouse):
        cache = EmbeddingCache()
        system = WarpGate(WarpGateConfig(threshold=0.3), cache=cache)
        system.index_corpus(WarehouseConnector(toy_warehouse))
        scans_after_index = system.connector.stats.scan_count
        result = system.search(company_ref(), 3)
        # Query column was cached at indexing time: no extra scan.
        assert system.connector.stats.scan_count == scans_after_index
        assert result.timing.load_s == 0.0
        assert cache.hits >= 1


class TestIntrospection:
    def test_vector_of(self, toy_warpgate):
        vector = toy_warpgate.vector_of(company_ref())
        assert np.linalg.norm(vector) == pytest.approx(1.0)

    def test_similarity_symmetric(self, toy_warpgate):
        left = toy_warpgate.similarity(company_ref(), vendor_ref())
        right = toy_warpgate.similarity(vendor_ref(), company_ref())
        assert left == pytest.approx(right)

    def test_explain(self, toy_warpgate):
        explanation = toy_warpgate.explain(company_ref(), vendor_ref())
        assert explanation["above_threshold"] is True
        assert 0.0 <= explanation["lsh_candidate_probability"] <= 1.0


class TestOnTestbed:
    """Smoke checks against the shared indexed testbedXS system."""

    def test_answers_retrievable(self, indexed_warpgate, testbed_xs):
        truth = testbed_xs.ground_truth
        hits = 0
        for query in testbed_xs.queries:
            result = indexed_warpgate.search(query.ref, 10)
            if any(truth.is_answer(query.ref, ref) for ref in result.refs):
                hits += 1
        assert hits / len(testbed_xs.queries) > 0.6

    def test_scores_descending(self, indexed_warpgate, testbed_xs):
        result = indexed_warpgate.search(testbed_xs.queries[0].ref, 10)
        scores = [candidate.score for candidate in result.candidates]
        assert scores == sorted(scores, reverse=True)
