"""Tests for repro.embedding.vocab."""

from __future__ import annotations

import math

import pytest

from repro.embedding.vocab import Vocabulary


def build_vocab() -> Vocabulary:
    vocab = Vocabulary(min_count=2)
    vocab.build([["a", "b", "a"], ["a", "c"], ["b", "d"]])
    return vocab


class TestBuild:
    def test_min_count_filters(self):
        vocab = build_vocab()
        assert "a" in vocab  # count 3
        assert "b" in vocab  # count 2
        assert "c" not in vocab  # count 1
        assert "d" not in vocab

    def test_len(self):
        assert len(build_vocab()) == 2

    def test_ids_ordered_by_count_then_token(self):
        vocab = build_vocab()
        assert vocab.token_id("a") == 0
        assert vocab.token_id("b") == 1
        assert vocab.token_of(0) == "a"

    def test_oov_id_is_none(self):
        assert build_vocab().token_id("zzz") is None

    def test_counts(self):
        vocab = build_vocab()
        assert vocab.count("a") == 3
        assert vocab.count("zzz") == 0

    def test_n_documents(self):
        assert build_vocab().n_documents == 3

    def test_min_count_validation(self):
        with pytest.raises(ValueError):
            Vocabulary(min_count=0)

    def test_freeze_idempotent(self):
        vocab = build_vocab()
        tokens = vocab.tokens
        vocab.freeze()
        assert vocab.tokens == tokens

    def test_add_after_freeze_rejected(self):
        vocab = build_vocab()
        with pytest.raises(RuntimeError):
            vocab.add_document(["x"])

    def test_unfrozen_access_rejected(self):
        vocab = Vocabulary()
        vocab.add_document(["a"])
        with pytest.raises(RuntimeError):
            vocab.token_id("a")

    def test_deterministic_layout(self):
        """Identical corpora in different insertion orders agree on ids."""
        first = Vocabulary().build([["b", "a"], ["a", "b"]])
        second = Vocabulary().build([["a", "b"], ["b", "a"]])
        assert list(first.tokens) == list(second.tokens)


class TestDocumentFrequency:
    def test_df_counts_documents_not_occurrences(self):
        vocab = build_vocab()
        assert vocab.document_frequency("a") == 2  # appears twice in doc 1

    def test_idf_monotone(self):
        vocab = build_vocab()
        # 'b' appears in 2 documents, 'a' also in 2 -> equal idf.
        assert vocab.idf("a") == pytest.approx(vocab.idf("b"))
        # Unseen token gets maximum idf.
        assert vocab.idf("zzz") > vocab.idf("a")

    def test_idf_formula(self):
        vocab = build_vocab()
        expected = math.log((1 + 3) / (1 + 2)) + 1.0
        assert vocab.idf("a") == pytest.approx(expected)
