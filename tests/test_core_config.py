"""Tests for repro.core.config."""

from __future__ import annotations

import pytest

from repro.core.config import WarpGateConfig


class TestDefaults:
    def test_paper_defaults(self):
        config = WarpGateConfig()
        assert config.model_name == "webtable"
        assert config.threshold == 0.7
        assert config.search_backend == "lsh"
        assert config.sample_size is None
        assert config.default_k == 10

    def test_frozen(self):
        with pytest.raises(AttributeError):
            WarpGateConfig().threshold = 0.5  # type: ignore[misc]


class TestValidation:
    def test_unknown_backend(self):
        with pytest.raises(ValueError):
            WarpGateConfig(search_backend="faiss")

    def test_unknown_aggregation(self):
        with pytest.raises(ValueError):
            WarpGateConfig(aggregation="max")

    def test_unknown_sampling(self):
        with pytest.raises(ValueError):
            WarpGateConfig(sampling_strategy="stratified")

    def test_bad_sample_size(self):
        with pytest.raises(ValueError):
            WarpGateConfig(sample_size=0)

    def test_bad_threshold(self):
        with pytest.raises(ValueError):
            WarpGateConfig(threshold=1.5)

    def test_bad_k(self):
        with pytest.raises(ValueError):
            WarpGateConfig(default_k=0)


class TestWithers:
    def test_with_sampling(self):
        config = WarpGateConfig().with_sampling(100, "uniform")
        assert config.sample_size == 100
        assert config.sampling_strategy == "uniform"

    def test_with_sampling_keeps_strategy(self):
        config = WarpGateConfig(sampling_strategy="reservoir").with_sampling(10)
        assert config.sampling_strategy == "reservoir"

    def test_with_model(self):
        assert WarpGateConfig().with_model("bertlike").model_name == "bertlike"

    def test_with_backend(self):
        assert WarpGateConfig().with_backend("exact").search_backend == "exact"

    def test_with_threshold(self):
        assert WarpGateConfig().with_threshold(0.5).threshold == 0.5

    def test_with_serving(self):
        config = WarpGateConfig().with_serving(
            coalesce=False, coalesce_max_batch=8, query_cache_size=0
        )
        assert config.coalesce is False
        assert config.coalesce_max_batch == 8
        assert config.query_cache_size == 0
        # Unnamed knobs keep their values.
        assert config.coalesce_max_wait_us == WarpGateConfig().coalesce_max_wait_us

    def test_serving_knobs_validated(self):
        with pytest.raises(ValueError):
            WarpGateConfig(coalesce_max_batch=0)
        with pytest.raises(ValueError):
            WarpGateConfig(coalesce_max_wait_us=-1)
        with pytest.raises(ValueError):
            WarpGateConfig(query_cache_size=-1)

    def test_withers_do_not_mutate_original(self):
        config = WarpGateConfig()
        config.with_threshold(0.1)
        assert config.threshold == 0.7


class TestWorkerKnobs:
    def test_defaults_stay_in_process(self):
        config = WarpGateConfig()
        assert config.shard_workers == 0
        assert config.worker_transport == "pipe"

    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError):
            WarpGateConfig(shard_workers=-1)

    def test_worker_shard_mismatch_rejected(self):
        # One worker process owns exactly one shard: a divergent pair is
        # a configuration contradiction, not something to reconcile.
        with pytest.raises(ValueError):
            WarpGateConfig(n_shards=3, shard_workers=2)

    def test_workers_set_shard_count_when_unsharded(self):
        assert WarpGateConfig(shard_workers=4).shard_workers == 4
        assert WarpGateConfig(n_shards=4, shard_workers=4).shard_workers == 4

    def test_unknown_transport_rejected(self):
        with pytest.raises(ValueError):
            WarpGateConfig(shard_workers=2, worker_transport="carrier-pigeon")

    def test_with_workers(self):
        config = WarpGateConfig().with_workers(3, transport="shm")
        assert config.shard_workers == 3
        assert config.worker_transport == "shm"
        # Transport persists through a workers-only re-toggle.
        assert config.with_workers(2).worker_transport == "shm"
