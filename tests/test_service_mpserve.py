"""Multi-process HTTP front: SO_REUSEPORT sharing, supervision, shutdown.

:class:`~repro.service.mpserve.MultiProcessServer` forks ``procs``
complete servers onto one listen address; the kernel load-balances
connections across them.  These tests pin the lifecycle contract —
port-0 resolution, every child answering real HTTP, a SIGKILLed child
respawned by the supervisor, idempotent shutdown that leaves no live
pids — plus the ``reuse_port`` plumbing in ``make_server`` that makes
address sharing possible at all.
"""

from __future__ import annotations

import http.client
import json
import os
import signal
import socket
import time

import pytest

from repro.core.config import WarpGateConfig
from repro.service import DiscoveryService, MultiProcessServer, make_server
from repro.warehouse.connector import WarehouseConnector

pytestmark = pytest.mark.skipif(
    not hasattr(socket, "SO_REUSEPORT"),
    reason="multi-process serving needs SO_REUSEPORT",
)


def request(port: int, method: str, path: str, body: dict | None = None):
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
    try:
        payload = json.dumps(body) if body is not None else None
        headers = {"Content-Type": "application/json"} if payload else {}
        connection.request(method, path, body=payload, headers=headers)
        response = connection.getresponse()
        return response.status, json.loads(response.read().decode("utf-8"))
    finally:
        connection.close()


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True


@pytest.fixture()
def factory(toy_warehouse):
    """Service factory as ``cmd_serve`` builds it: one full service per child."""

    def build() -> DiscoveryService:
        service = DiscoveryService(WarpGateConfig(threshold=0.3))
        service.open(WarehouseConnector(toy_warehouse))
        return service

    return build


class TestReusePortPlumbing:
    def test_two_servers_share_one_port(self, factory):
        """``reuse_port=True`` lets two full servers bind one address."""
        first = make_server(factory(), "127.0.0.1", 0, workers=2, reuse_port=True)
        port = first.server_address[1]
        second = make_server(factory(), "127.0.0.1", port, workers=2, reuse_port=True)
        with first, second:
            status, payload = request(port, "GET", "/healthz")
            assert status == 200 and payload["status"] == "ok"
        first.server_close()
        second.server_close()

    def test_default_server_still_rejects_bound_port(self, factory):
        """Without the flag the second bind fails — no silent sharing."""
        first = make_server(factory(), "127.0.0.1", 0, workers=2)
        port = first.server_address[1]
        with first:
            with pytest.raises(OSError):
                make_server(factory(), "127.0.0.1", port, workers=2)
        first.server_close()


class TestMultiProcessServer:
    def test_rejects_bad_procs(self, factory):
        with pytest.raises(ValueError):
            MultiProcessServer(factory, procs=0)

    def test_serves_http_across_children(self, factory):
        with MultiProcessServer(factory, port=0, procs=2, workers=4) as front:
            assert front.port > 0
            pids = front.child_pids()
            assert len(pids) == 2 and all(pid is not None for pid in pids)
            for _ in range(6):  # kernel-balanced, so hit the port repeatedly
                status, payload = request(front.port, "GET", "/healthz")
                assert status == 200 and payload["indexed"] is True
            status, payload = request(
                front.port,
                "POST",
                "/search",
                {"query": "db.customers.company", "k": 3},
            )
            assert status == 200
            assert payload["candidates"][0]["ref"] == "db.vendors.vendor_name"

    def test_supervisor_respawns_killed_child(self, factory):
        with MultiProcessServer(factory, port=0, procs=2, workers=4) as front:
            victim = front.child_pids()[0]
            os.kill(victim, signal.SIGKILL)
            deadline = time.monotonic() + 15
            while time.monotonic() < deadline:
                replacement = front.child_pids()[0]
                if replacement is not None and replacement != victim:
                    break
                time.sleep(0.1)
            replacement = front.child_pids()[0]
            assert replacement is not None and replacement != victim
            status, _ = request(front.port, "GET", "/healthz")
            assert status == 200

    def test_shutdown_is_idempotent_and_reaps_children(self, factory):
        front = MultiProcessServer(factory, port=0, procs=2, workers=4)
        front.start()
        front.start()  # idempotent
        pids = [pid for pid in front.child_pids() if pid is not None]
        assert len(pids) == 2
        front.shutdown()
        front.shutdown()
        assert front.child_pids() == [None, None]
        deadline = time.monotonic() + 5
        while time.monotonic() < deadline:
            if all(not _pid_alive(pid) for pid in pids):
                break
            time.sleep(0.05)
        assert all(not _pid_alive(pid) for pid in pids)
