"""Join-graph behavior at the service boundary: Python API and HTTP routes."""

from __future__ import annotations

import pytest

from repro.core.config import WarpGateConfig
from repro.service import DiscoveryService, ServiceError, make_server
from repro.storage.column import Column
from repro.storage.table import Table
from repro.warehouse.connector import WarehouseConnector

from tests.test_service_http import request

CUSTOMERS, VENDORS, COLORS = ("db", "customers"), ("db", "vendors"), ("db", "colors")


@pytest.fixture()
def service(toy_warehouse):
    """An open service over the toy warehouse at a permissive threshold.

    threshold=0.3 matches the HTTP suite: low enough that the unrelated
    ``colors`` table still picks up weak edges, giving multi-hop routes.
    """
    svc = DiscoveryService(WarpGateConfig(threshold=0.3))
    svc.open(WarehouseConnector(toy_warehouse))
    return svc


class TestFindPaths:
    def test_direct_join_ranked_first(self, service):
        paths = service.find_paths("db.customers", "db.vendors", max_hops=2)
        assert paths, "customers/vendors share company values: must join"
        best = paths[0]
        assert best.tables == (CUSTOMERS, VENDORS)
        assert best.hops == 1
        # company <-> vendor_name: identical values, so both cosine and
        # jaccard saturate and the blended confidence is ~1.
        assert best.score > 0.95
        assert best.edges[0].jaccard == pytest.approx(1.0)

    def test_two_hop_route_through_weak_table(self, service):
        paths = service.find_paths("db.customers", "db.vendors", max_hops=2, limit=None)
        routed = [path for path in paths if path.hops == 2]
        assert routed, "threshold 0.3 admits a detour via db.colors"
        assert routed[0].tables == (CUSTOMERS, COLORS, VENDORS)
        assert routed[0].score < paths[0].score

    def test_bare_names_qualified_for_single_database(self, service):
        paths = service.find_paths("customers", "vendors", max_hops=1)
        assert paths and paths[0].tables == (CUSTOMERS, VENDORS)

    def test_min_combiner(self, service):
        product = service.find_paths("customers", "vendors", combiner="product")
        weakest = service.find_paths("customers", "vendors", combiner="min")
        assert [p.tables for p in product] == [p.tables for p in weakest]
        two_hop = next(p for p in weakest if p.hops == 2)
        assert two_hop.score == pytest.approx(min(e.confidence for e in two_hop.edges))

    def test_unknown_table_is_not_found(self, service):
        with pytest.raises(ServiceError) as excinfo:
            service.find_paths("db.customers", "db.nonexistent")
        assert excinfo.value.code == "not_found"

    def test_same_table_is_bad_request(self, service):
        with pytest.raises(ServiceError) as excinfo:
            service.find_paths("db.customers", "db.customers")
        assert excinfo.value.code == "bad_request"

    def test_unknown_combiner_is_bad_request(self, service):
        with pytest.raises(ServiceError) as excinfo:
            service.find_paths("db.customers", "db.vendors", combiner="median")
        assert excinfo.value.code == "bad_request"

    def test_neighbors_ranked(self, service):
        ranked = service.neighbors("db.customers")
        assert ranked[0][0] == VENDORS
        assert ranked[0][1].confidence == max(edge.confidence for _, edge in ranked)


class TestPathCacheAndStats:
    def test_repeat_query_hits_cache(self, service):
        service.find_paths("customers", "vendors")
        before = service.graph_stats()["path_cache"]["hits"]
        service.find_paths("customers", "vendors")
        after = service.graph_stats()["path_cache"]["hits"]
        assert after == before + 1

    def test_mutation_invalidates_cached_paths(self, service, toy_warehouse):
        service.find_paths("customers", "vendors")
        hits = service.graph_stats()["path_cache"]["hits"]
        service.drop_table("db", "colors")
        # Same query, new generation: must recompute, not hit.
        paths = service.find_paths("customers", "vendors", limit=None)
        assert service.graph_stats()["path_cache"]["hits"] == hits
        assert all(COLORS not in path.tables for path in paths)

    def test_graph_counters_in_index_stats(self, service):
        service.find_paths("customers", "vendors")
        payload = service.stats().to_dict()
        graph = payload["graph"]
        assert graph["tables"] == 3
        assert graph["edges"] >= 1
        assert graph["path_queries"] >= 1
        assert graph["synced_generation"] == service.engine.index_generation

    def test_export_formats(self, service):
        dot = service.export_graph("dot")
        assert dot.startswith("graph joingraph") and '"db.customers"' in dot
        with pytest.raises(ServiceError) as excinfo:
            service.export_graph("graphml")
        assert excinfo.value.code == "bad_request"


class TestMutationConsistency:
    def test_add_table_grows_graph(self, service):
        clone = Table(
            "partners",
            [
                Column("partner_name", [
                    "Acme Dynamics Corp", "Global Logistics Inc",
                    "Nova Analytics Llc", "Summit Robotics Ltd",
                    "Vertex Energy Group",
                ]),
            ],
        )
        service.add_table("db", clone)
        paths = service.find_paths("db.partners", "db.customers", max_hops=1)
        assert paths and paths[0].score > 0.95

    def test_drop_table_removes_node(self, service):
        service.drop_table("db", "colors")
        assert COLORS not in service.join_graph.tables()
        with pytest.raises(ServiceError) as excinfo:
            service.neighbors("db.colors")
        assert excinfo.value.code == "not_found"

    def test_refresh_column_keeps_graph_consistent(self, service, toy_warehouse):
        before = service.find_paths("customers", "vendors", limit=None)
        column = toy_warehouse.database("db").table("vendors").column("vendor_name")
        column._values = ("Zephyr Corp",) + column._values[1:]
        service.refresh_column("db.vendors.vendor_name")
        after = service.find_paths("customers", "vendors", limit=None)
        direct = next(path for path in after if path.hops == 1)
        # One of five values diverged: the join is weaker but still present.
        assert direct.edges[0].jaccard < 1.0
        assert direct.score < before[0].score

    def test_drop_of_fully_evicted_table_leaves_no_dangling_node(self, service):
        """Regression: drop_table on a zero-indexed-column table must still
        bump the generation so the graph (and query caches) observe it."""
        refs = [
            ref for ref in service.engine.indexed_refs if ref.table_key == COLORS
        ]
        assert refs, "toy colors table indexes at least one column"
        for ref in refs:
            service.engine.remove_column(ref)
        # The graph syncs past the manual eviction (membership diff).
        assert COLORS not in service.join_graph.tables()
        generation = service.engine.index_generation
        service.drop_table("db", "colors")
        assert service.engine.index_generation > generation
        assert COLORS not in service.join_graph.tables()
        stats = service.graph_stats()
        assert stats["tables"] == 2
        assert stats["synced_generation"] == service.engine.index_generation


class TestHTTPRoutes:
    @pytest.fixture()
    def served(self, toy_warehouse):
        service = DiscoveryService(WarpGateConfig(threshold=0.3))
        service.open(WarehouseConnector(toy_warehouse))
        with make_server(service, "127.0.0.1", 0, workers=4) as server:
            yield service, server.server_address[1]

    def test_paths_roundtrip(self, served):
        _, port = served
        status, payload = request(
            port, "POST", "/paths",
            {"src": "db.customers", "dst": "db.vendors", "max_hops": 2},
        )
        assert status == 200
        assert payload["src"] == "db.customers"
        assert payload["dst"] == "db.vendors"
        best = payload["paths"][0]
        assert best["tables"] == ["db.customers", "db.vendors"]
        assert best["hops"] == 1
        assert best["score"] > 0.95

    def test_paths_matches_python_api(self, served):
        service, port = served
        _, payload = request(
            port, "POST", "/paths", {"src": "customers", "dst": "vendors"}
        )
        direct = service.find_paths("customers", "vendors")
        assert payload["paths"] == [path.to_dict() for path in direct]

    def test_paths_validation(self, served):
        _, port = served
        status, payload = request(port, "POST", "/paths", {"src": "db.customers"})
        assert status == 400 and payload["error"]["code"] == "bad_request"
        status, payload = request(
            port, "POST", "/paths",
            {"src": "db.customers", "dst": "db.vendors", "max_hops": "three"},
        )
        assert status == 400
        status, payload = request(
            port, "POST", "/paths",
            {"src": "db.customers", "dst": "db.vendors", "surprise": 1},
        )
        assert status == 400
        status, payload = request(
            port, "POST", "/paths", {"src": "db.customers", "dst": "db.missing"}
        )
        assert status == 404 and payload["error"]["code"] == "not_found"

    def test_graph_stats_route(self, served):
        _, port = served
        status, payload = request(port, "GET", "/graph/stats")
        assert status == 200
        assert payload["tables"] == 3
        assert payload["edges"] >= 1
        assert payload["edge_threshold"] == pytest.approx(0.3)
