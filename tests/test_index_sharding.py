"""Shard-merge correctness: ShardedIndex(S) ≡ the 1-shard index.

The sharded engine's contract is *exactness*: partitioning the corpus
across S per-shard arenas and merging per-shard top-k must return the
same keys, the same scores, and the same canonical ordering as one
monolithic index over the same corpus — for every backend, for both
placements, for single and batched search, and across interleaved
add/remove churn that drives per-shard compactions.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._util import rng_for
from repro.errors import DimensionMismatchError, EmptyIndexError
from repro.index.exact import ExactCosineIndex
from repro.index.lsh import SimHashLSHIndex
from repro.index.pivot import PivotFilterIndex
from repro.index.sharding import ShardedIndex

DIM = 24
BACKENDS = ["lsh", "exact", "pivot"]


def cloud(n: int, key: object) -> np.ndarray:
    matrix = rng_for("shard-test", key).standard_normal((n, DIM))
    return matrix / np.linalg.norm(matrix, axis=1, keepdims=True)


def backend_factory(backend: str, threshold: float = 0.2):
    if backend == "lsh":
        return lambda: SimHashLSHIndex(DIM, n_bits=64, n_bands=32, threshold=threshold)
    if backend == "exact":
        return lambda: ExactCosineIndex(DIM)
    return lambda: PivotFilterIndex(DIM, n_pivots=5, threshold=threshold)


def make_pair(backend: str, n_shards: int = 4, placement: str = "hash"):
    factory = backend_factory(backend)
    return factory(), ShardedIndex(
        DIM, factory, n_shards=n_shards, placement=placement
    )


def assert_same_results(single, sharded, queries, k, **kwargs):
    excludes = kwargs.pop("excludes", None)
    for position in range(queries.shape[0]):
        exclude = excludes[position] if excludes is not None else None
        want = single.query(queries[position], k, exclude=exclude, **kwargs)
        got = sharded.query(queries[position], k, exclude=exclude, **kwargs)
        assert [key for key, _ in got] == [key for key, _ in want]
        assert [score for _, score in got] == pytest.approx(
            [score for _, score in want], abs=1e-6
        )
    want_batch = single.search_batch(queries, k, excludes=excludes, **kwargs)
    got_batch = sharded.search_batch(queries, k, excludes=excludes, **kwargs)
    for got, want in zip(got_batch, want_batch):
        assert [key for key, _ in got] == [key for key, _ in want]
        assert [score for _, score in got] == pytest.approx(
            [score for _, score in want], abs=1e-6
        )


@pytest.mark.parametrize("backend", BACKENDS)
class TestShardedEqualsSingle:
    def test_bulk_load(self, backend):
        single, sharded = make_pair(backend)
        points = cloud(160, "bulk")
        single.bulk_load(list(range(160)), points)
        sharded.bulk_load(list(range(160)), points)
        assert len(sharded) == len(single) == 160
        assert_same_results(single, sharded, cloud(9, "bulk-q"), 10)

    def test_incremental_adds(self, backend):
        single, sharded = make_pair(backend)
        points = cloud(90, "inc")
        for position in range(90):
            single.add(position, points[position])
            sharded.add(position, points[position])
        assert_same_results(single, sharded, cloud(7, "inc-q"), 8)

    def test_round_robin_placement(self, backend):
        single, sharded = make_pair(backend, placement="round_robin")
        points = cloud(100, "rr")
        sharded.bulk_load(list(range(100)), points)
        single.bulk_load(list(range(100)), points)
        assert sharded.shard_sizes() == [25, 25, 25, 25]
        assert_same_results(single, sharded, cloud(6, "rr-q"), 10)

    def test_excludes_and_threshold(self, backend):
        single, sharded = make_pair(backend)
        points = cloud(80, "excl")
        single.bulk_load(list(range(80)), points)
        sharded.bulk_load(list(range(80)), points)
        queries = points[:6]
        assert_same_results(
            single,
            sharded,
            queries,
            5,
            threshold=0.4,
            excludes=list(range(6)),
        )

    @settings(max_examples=8, deadline=None)
    @given(st.integers(0, 10_000))
    def test_random_corpora(self, backend, seed):
        single, sharded = make_pair(backend)
        points = cloud(120, ("prop", seed))
        single.bulk_load(list(range(120)), points)
        sharded.bulk_load(list(range(120)), points)
        assert_same_results(single, sharded, cloud(5, ("prop-q", seed)), 12)

    @settings(max_examples=6, deadline=None)
    @given(st.integers(0, 10_000))
    def test_interleaved_churn_and_compaction(self, backend, seed):
        """Add/remove churn drives shard-local compactions; results stay equal."""
        rng = np.random.default_rng(seed)
        single, sharded = make_pair(backend)
        points = cloud(260, ("churn", seed))
        live: set[int] = set()
        for step in range(180):
            if live and rng.random() < 0.45:
                victim = sorted(live)[int(rng.integers(len(live)))]
                single.remove(victim)
                sharded.remove(victim)
                live.discard(victim)
            else:
                single.add(step, points[step])
                sharded.add(step, points[step])
                live.add(step)
        assert sorted(map(str, sharded.keys())) == sorted(map(str, single.keys()))
        if not live:
            # Churn emptied the corpus: both engines must refuse queries.
            with pytest.raises(EmptyIndexError):
                single.query(points[0], 9)
            with pytest.raises(EmptyIndexError):
                sharded.query(points[0], 9)
            return
        single.build()
        sharded.build()
        assert_same_results(single, sharded, cloud(7, ("churn-q", seed)), 9)

    def test_update_keeps_owner_and_results(self, backend):
        single, sharded = make_pair(backend, placement="round_robin")
        points = cloud(64, "upd")
        single.bulk_load(list(range(60)), points[:60])
        sharded.bulk_load(list(range(60)), points[:60])
        owner_before = sharded.shard_of(7)
        single.update(7, points[61])
        sharded.update(7, points[61])
        assert sharded.shard_of(7) == owner_before
        assert_same_results(single, sharded, cloud(5, "upd-q"), 10)

    def test_tie_break_across_shards(self, backend):
        """Identical vectors in different shards rank by str(key), globally.

        The tie vector is one-hot so every shard's float32 dot product is
        *exactly* 1.0 regardless of BLAS reduction order — scores tie
        bit-for-bit and the canonical ``str(key)`` ordering must win.
        """
        single, sharded = make_pair(backend)
        vector = np.zeros(DIM)
        vector[0] = 1.0
        base = cloud(12, "tie")
        # Same vector under many keys: hash placement scatters them.
        keys = [f"tie{position}" for position in range(8)]
        for index in (single, sharded):
            for key in keys:
                index.add(key, vector)
            for position in range(8, 12):
                index.add(f"fill{position}", base[position])
        assert len(set(sharded.shard_of(key) for key in keys)) > 1
        assert_same_results(single, sharded, vector[None, :], 6)


class TestShardedSurface:
    def test_keys_insertion_order(self):
        _, sharded = make_pair("exact")
        points = cloud(10, "order")
        for position in range(10):
            sharded.add(position, points[position])
        assert sharded.keys() == list(range(10))
        sharded.remove(3)
        assert sharded.keys() == [0, 1, 2, 4, 5, 6, 7, 8, 9]

    def test_vector_of_routes_to_owner(self):
        _, sharded = make_pair("exact")
        points = cloud(20, "vec")
        sharded.bulk_load(list(range(20)), points)
        for position in range(20):
            assert np.allclose(
                sharded.vector_of(position),
                points[position].astype(np.float32),
                atol=1e-6,
            )

    def test_duplicate_add_rejected(self):
        _, sharded = make_pair("exact")
        sharded.add("a", cloud(1, "dup")[0])
        with pytest.raises(ValueError):
            sharded.add("a", cloud(1, "dup2")[0])

    def test_bulk_load_duplicate_keys_rejected(self):
        _, sharded = make_pair("exact")
        points = cloud(2, "bulk-dup")
        with pytest.raises(ValueError):
            sharded.bulk_load(["a", "a"], points)

    def test_bulk_load_rejects_bad_batches_before_any_shard_mutates(self):
        """A rejected batch must leave every shard untouched (atomic)."""
        _, sharded = make_pair("lsh")
        points = cloud(8, "atomic")
        with pytest.raises(ValueError):  # misaligned signatures
            sharded.bulk_load(
                list(range(8)),
                points,
                signatures=np.zeros((3, 2), dtype=np.uint64),
            )
        assert len(sharded) == 0 and sharded.shard_sizes() == [0, 0, 0, 0]
        bad = points.copy()
        bad[5] = 0.0
        with pytest.raises(ValueError):  # zero row mid-batch
            sharded.bulk_load(list(range(8)), bad)
        assert len(sharded) == 0 and sharded.shard_sizes() == [0, 0, 0, 0]
        sharded.bulk_load(list(range(8)), points)  # retry now succeeds
        assert len(sharded) == 8

    def test_remove_missing_raises(self):
        _, sharded = make_pair("exact")
        with pytest.raises(KeyError):
            sharded.remove("ghost")

    def test_empty_query_raises(self):
        _, sharded = make_pair("exact")
        with pytest.raises(EmptyIndexError):
            sharded.query(cloud(1, "e")[0], 3)

    def test_dimension_mismatch(self):
        _, sharded = make_pair("exact")
        sharded.add("a", cloud(1, "d")[0])
        with pytest.raises(DimensionMismatchError):
            sharded.query(np.ones(DIM + 1), 3)
        with pytest.raises(DimensionMismatchError):
            sharded.search_batch(np.ones((2, DIM + 1)), 3)

    def test_build_tolerates_empty_shards(self):
        """build() with fewer live columns than shards must not raise."""
        _, sharded = make_pair("pivot", n_shards=4)
        points = cloud(2, "sparse")
        sharded.add("a", points[0])
        sharded.add("b", points[1])
        sharded.build()
        assert len(sharded.query(points[0], 2, threshold=-1.0)) == 2

    def test_hash_placement_colocates_tables(self):
        from repro.storage.schema import ColumnRef

        _, sharded = make_pair("exact")
        points = cloud(6, "co")
        refs = [ColumnRef("db", "orders", f"c{position}") for position in range(6)]
        for ref, vector in zip(refs, points):
            sharded.add(ref, vector)
        owners = {sharded.shard_of(ref) for ref in refs}
        assert len(owners) == 1

    def test_export_rows_round_trips(self):
        single, sharded = make_pair("lsh")
        points = cloud(50, "export")
        single.bulk_load(list(range(50)), points)
        sharded.bulk_load(list(range(50)), points)
        keys, vectors, signatures = sharded.export_rows()
        assert sorted(map(str, keys)) == sorted(map(str, single.keys()))
        assert vectors.shape == (50, DIM)
        assert signatures is not None and signatures.shape[0] == 50
        by_key = {key: row for key, row in zip(keys, vectors)}
        for key in single.keys():
            assert np.array_equal(by_key[key], single.vector_of(key))

    def test_invalid_construction(self):
        factory = backend_factory("exact")
        with pytest.raises(ValueError):
            ShardedIndex(DIM, factory, n_shards=0)
        with pytest.raises(ValueError):
            ShardedIndex(DIM, factory, n_shards=2, placement="modulo")

    def test_empty_batch(self):
        _, sharded = make_pair("exact")
        sharded.add("a", cloud(1, "eb")[0])
        assert sharded.search_batch(np.zeros((0, DIM)), 3) == []
