"""Tests for repro.text.qgrams."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.text.qgrams import qgram_multiset, qgram_set


class TestQgramSet:
    def test_unpadded_bigrams(self):
        assert qgram_set("abc", q=2, pad=False) == {"ab", "bc"}

    def test_padded_includes_boundaries(self):
        grams = qgram_set("ab", q=2)
        assert any(g.startswith("\x00") for g in grams)
        assert any(g.endswith("\x00") for g in grams)

    def test_empty_string(self):
        assert qgram_set("") == frozenset()

    def test_string_shorter_than_q_unpadded(self):
        assert qgram_set("a", q=3, pad=False) == {"a"}

    def test_identical_strings_identical_sets(self):
        assert qgram_set("warpgate") == qgram_set("warpgate")

    def test_q_must_be_positive(self):
        with pytest.raises(ValueError):
            qgram_set("abc", q=0)

    @given(st.text(min_size=1, max_size=40), st.integers(1, 5))
    def test_all_grams_have_length_q(self, text, q):
        for gram in qgram_set(text, q=q, pad=True):
            assert len(gram) == q or len(text) + 2 * (q - 1) < q

    @given(st.text(max_size=40))
    def test_subset_of_multiset_keys(self, text):
        assert qgram_set(text, q=3) == frozenset(qgram_multiset(text, q=3))


class TestQgramMultiset:
    def test_counts_repeats(self):
        counts = qgram_multiset("aaaa", q=2, pad=False)
        assert counts["aa"] == 3

    def test_empty(self):
        assert qgram_multiset("") == {}

    def test_q_must_be_positive(self):
        with pytest.raises(ValueError):
            qgram_multiset("abc", q=-1)

    @given(st.text(min_size=3, max_size=40))
    def test_total_count_matches_positions(self, text):
        q = 3
        counts = qgram_multiset(text, q=q, pad=False)
        if len(text) >= q:
            assert sum(counts.values()) == len(text) - q + 1
