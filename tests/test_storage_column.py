"""Tests for repro.storage.column."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import TypeInferenceError
from repro.storage.column import Column
from repro.storage.types import DataType


class TestConstruction:
    def test_infers_type(self):
        assert Column("x", ["1", "2"]).dtype is DataType.INTEGER

    def test_explicit_type(self):
        column = Column("x", ["1", "2"], DataType.STRING)
        assert column.dtype is DataType.STRING

    def test_coerce_converts(self):
        column = Column("x", ["1", "2"], DataType.INTEGER, coerce=True)
        assert column.values == (1, 2)

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Column("", [1])

    def test_from_raw_coerces(self):
        column = Column.from_raw("x", ["1", "2", ""])
        assert column.dtype is DataType.INTEGER
        assert column.values == (1, 2, None)

    def test_from_raw_falls_back_to_string(self):
        column = Column.from_raw("x", ["1", "2", "x"])
        assert column.dtype is DataType.STRING


class TestProtocol:
    def test_len_iter_getitem(self):
        column = Column("x", [1, 2, 3])
        assert len(column) == 3
        assert list(column) == [1, 2, 3]
        assert column[1] == 2
        assert column[0:2] == (1, 2)

    def test_equality_and_hash(self):
        a = Column("x", [1, 2])
        b = Column("x", [1, 2])
        c = Column("y", [1, 2])
        assert a == b
        assert hash(a) == hash(b)
        assert a != c

    def test_repr_mentions_name(self):
        assert "x" in repr(Column("x", [1]))


class TestAccessors:
    def test_non_null_values(self):
        column = Column("x", [1, None, 2])
        assert list(column.non_null_values()) == [1, 2]

    def test_head(self):
        assert Column("x", [1, 2, 3]).head(2) == (1, 2)

    def test_head_negative_rejected(self):
        with pytest.raises(ValueError):
            Column("x", [1]).head(-1)

    def test_distinct_values(self):
        column = Column("x", [1, 1, 2, None])
        assert column.distinct_values == {1, 2}

    def test_string_values(self):
        column = Column("x", [1, None, 2])
        assert column.string_values == ("1", "2")

    def test_sample(self):
        column = Column("x", [10, 20, 30, 40])
        assert Column("x", [10, 20, 30, 40]).sample([0, 2]).values == (10, 30)
        assert column.sample([3, 0]).values == (40, 10)

    def test_rename(self):
        renamed = Column("x", [1]).rename("y")
        assert renamed.name == "y"
        assert renamed.values == (1,)


class TestStats:
    def test_counts(self):
        stats = Column("x", [1, 1, None, 3]).stats
        assert stats.row_count == 4
        assert stats.null_count == 1
        assert stats.distinct_count == 2

    def test_null_fraction(self):
        assert Column("x", [1, None]).stats.null_fraction == 0.5

    def test_uniqueness_key_like(self):
        assert Column("x", [1, 2, 3]).stats.uniqueness == 1.0

    def test_uniqueness_repeated(self):
        assert Column("x", [1, 1, 1, 1]).stats.uniqueness == 0.25

    def test_numeric_moments(self):
        stats = Column("x", [1.0, 3.0]).stats
        assert stats.minimum == 1.0
        assert stats.maximum == 3.0
        assert stats.mean == 2.0

    def test_non_numeric_moments_are_none(self):
        stats = Column("x", ["a", "b"]).stats
        assert stats.minimum is None
        assert stats.mean is None

    def test_length_moments(self):
        stats = Column("x", ["a", "bbb"]).stats
        assert stats.mean_length == 2.0
        assert stats.max_length == 3

    def test_empty_column_stats(self):
        stats = Column("x", [], DataType.STRING).stats
        assert stats.row_count == 0
        assert stats.null_fraction == 0.0
        assert stats.uniqueness == 0.0


class TestNumericArray:
    def test_values(self):
        array = Column("x", [1, None, 3]).numeric_array()
        assert array.tolist() == [1.0, 3.0]

    def test_rejects_strings(self):
        with pytest.raises(TypeInferenceError):
            Column("x", ["a"]).numeric_array()


class TestEstimatedBytes:
    def test_numeric_fixed_width(self):
        assert Column("x", [1, 2, 3]).estimated_bytes() == 27

    def test_string_length_based(self):
        column = Column("x", ["ab", "cdef"], DataType.STRING)
        assert column.estimated_bytes() == 2 + 6

    def test_more_rows_more_bytes(self):
        small = Column("x", ["abc"] * 10, DataType.STRING)
        large = Column("x", ["abc"] * 100, DataType.STRING)
        assert large.estimated_bytes() > small.estimated_bytes()


class TestProperties:
    @given(st.lists(st.one_of(st.none(), st.integers(-100, 100)), max_size=50))
    def test_stats_consistency(self, values):
        column = Column("x", values, DataType.INTEGER)
        stats = column.stats
        assert stats.null_count + len(list(column.non_null_values())) == stats.row_count
        assert stats.distinct_count <= stats.row_count - stats.null_count or (
            stats.row_count == stats.null_count and stats.distinct_count == 0
        )

    @given(st.lists(st.integers(0, 20), min_size=1, max_size=30))
    def test_sample_preserves_values(self, values):
        column = Column("x", values)
        sampled = column.sample(range(0, len(values), 2))
        assert set(sampled.values) <= set(column.values)
