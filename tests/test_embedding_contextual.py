"""Tests for repro.embedding.contextual (§5.2.1 contextual embeddings)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.embedding.contextual import ContextualColumnEncoder
from repro.embedding.encoder import ColumnEncoder
from repro.embedding.hashing import HashingEmbeddingModel
from repro.storage.column import Column
from repro.storage.table import Table


@pytest.fixture()
def contextual() -> ContextualColumnEncoder:
    base = ColumnEncoder(HashingEmbeddingModel(dim=32))
    return ContextualColumnEncoder(base, context_weight=0.3)


def orders_table() -> Table:
    codes = [f"x-{i:03d}" for i in range(20)]
    return Table(
        "orders",
        [
            Column("code", codes),
            Column("ship_city", ["boston"] * 20),
            Column("carrier", ["fedex"] * 20),
        ],
    )


def stocks_table() -> Table:
    codes = [f"x-{i:03d}" for i in range(20)]  # identical ambiguous codes
    return Table(
        "stocks",
        [
            Column("code", codes),
            Column("ticker_name", ["acme corp"] * 20),
            Column("close_price", [1.5] * 20),
        ],
    )


class TestValidation:
    def test_bad_weight(self):
        base = ColumnEncoder(HashingEmbeddingModel(dim=8))
        with pytest.raises(ValueError):
            ContextualColumnEncoder(base, context_weight=1.0)

    def test_bad_sample(self):
        base = ColumnEncoder(HashingEmbeddingModel(dim=8))
        with pytest.raises(ValueError):
            ContextualColumnEncoder(base, context_value_sample=-1)

    def test_dim_delegates(self, contextual):
        assert contextual.dim == 32


class TestEncoding:
    def test_plain_encode_matches_base(self, contextual):
        column = Column("x", ["a", "b"])
        assert np.allclose(contextual.encode(column), contextual.base.encode(column))

    def test_zero_weight_reproduces_base(self):
        base = ColumnEncoder(HashingEmbeddingModel(dim=32))
        encoder = ContextualColumnEncoder(base, context_weight=0.0)
        table = orders_table()
        blended = encoder.encode_in_table(table.column("code"), table)
        assert np.allclose(blended, base.encode(table.column("code")))

    def test_context_vector_unit_norm(self, contextual):
        vector = contextual.context_vector(orders_table())
        assert np.linalg.norm(vector) == pytest.approx(1.0)

    def test_context_excludes_own_column(self, contextual):
        with_exclusion = contextual.context_vector(orders_table(), exclude="code")
        without = contextual.context_vector(orders_table())
        assert not np.allclose(with_exclusion, without)

    def test_output_unit_norm(self, contextual):
        table = orders_table()
        vector = contextual.encode_in_table(table.column("code"), table)
        assert np.linalg.norm(vector) == pytest.approx(1.0)

    def test_all_null_column_stays_zero(self, contextual):
        from repro.storage.types import DataType

        table = Table(
            "t",
            [
                Column("empty", [None, None], DataType.STRING),
                Column("other", ["a", "b"]),
            ],
        )
        vector = contextual.encode_in_table(table.column("empty"), table)
        assert not np.any(vector)

    def test_encode_many_in_table(self, contextual):
        table = orders_table()
        vectors = contextual.encode_many_in_table(table)
        assert set(vectors) == {"code", "ship_city", "carrier"}
        for column in table.columns:
            assert np.allclose(
                vectors[column.name], contextual.encode_in_table(column, table)
            )


class TestDisambiguation:
    def test_context_separates_ambiguous_columns(self, contextual):
        """Identical code columns in different tables drift apart."""
        orders = orders_table()
        stocks = stocks_table()
        base = contextual.base
        plain_similarity = float(
            base.encode(orders.column("code")) @ base.encode(stocks.column("code"))
        )
        contextual_similarity = float(
            contextual.encode_in_table(orders.column("code"), orders)
            @ contextual.encode_in_table(stocks.column("code"), stocks)
        )
        assert plain_similarity == pytest.approx(1.0)
        assert contextual_similarity < plain_similarity - 0.05

    def test_same_context_preserves_similarity(self, contextual):
        """Columns in near-identical tables stay close."""
        first = orders_table()
        second = Table(
            "orders_2",
            [
                Column("code", [f"x-{i:03d}" for i in range(20)]),
                Column("ship_city", ["boston"] * 20),
                Column("carrier", ["fedex"] * 20),
            ],
        )
        similarity = float(
            contextual.encode_in_table(first.column("code"), first)
            @ contextual.encode_in_table(second.column("code"), second)
        )
        assert similarity > 0.95
