"""Tests for repro.index.arena: the shared columnar vector store."""

from __future__ import annotations

import numpy as np
import pytest

from repro._util import rng_for
from repro.errors import DimensionMismatchError
from repro.index.arena import VectorArena
from repro.index.exact import ExactCosineIndex
from repro.index.lsh import SimHashLSHIndex
from repro.index.pivot import PivotFilterIndex

DIM = 16


def unit(seed: int, dim: int = DIM) -> np.ndarray:
    vector = rng_for("arena-test", seed).standard_normal(dim)
    return vector / np.linalg.norm(vector)


def make_arena(**kwargs) -> VectorArena:
    return VectorArena(DIM, **kwargs)


class TestConstruction:
    def test_dim_validated(self):
        with pytest.raises(ValueError):
            VectorArena(0)

    def test_signature_words_validated(self):
        with pytest.raises(ValueError):
            VectorArena(DIM, signature_words=-1)

    def test_repr(self):
        assert "VectorArena" in repr(make_arena())

    def test_signatures_absent_without_words(self):
        with pytest.raises(ValueError):
            _ = make_arena().signatures


class TestAdd:
    def test_rows_are_float32_units(self):
        arena = make_arena()
        arena.add("a", 5.0 * unit(1))
        stored = arena.vector_of("a")
        assert stored.dtype == np.float32
        assert np.linalg.norm(stored) == pytest.approx(1.0)

    def test_row_ids_are_sequential(self):
        arena = make_arena()
        assert arena.add("a", unit(1)) == 0
        assert arena.add("b", unit(2)) == 1

    def test_duplicate_key_rejected(self):
        arena = make_arena()
        arena.add("a", unit(1))
        with pytest.raises(ValueError):
            arena.add("a", unit(2))

    def test_zero_vector_rejected(self):
        with pytest.raises(ValueError):
            make_arena().add("z", np.zeros(DIM))

    def test_wrong_length_raises_dimension_mismatch(self):
        with pytest.raises(DimensionMismatchError):
            make_arena().add("a", np.ones(DIM + 1))

    def test_wrong_ndim_raises_dimension_mismatch(self):
        with pytest.raises(DimensionMismatchError):
            make_arena().add("a", np.ones((4, 4)))

    def test_growth_beyond_initial_capacity(self):
        arena = make_arena(initial_capacity=2)
        for position in range(65):
            arena.add(position, unit(position))
        assert len(arena) == 65
        assert arena.keys() == list(range(65))
        assert np.allclose(arena.vector_of(40), unit(40), atol=1e-6)

    def test_signature_required_when_stored(self):
        arena = make_arena(signature_words=2)
        with pytest.raises(ValueError):
            arena.add("a", unit(1))

    def test_signature_shape_enforced(self):
        arena = make_arena(signature_words=2)
        with pytest.raises(DimensionMismatchError):
            arena.add("a", unit(1), np.zeros(3, dtype=np.uint64))

    def test_signature_stored(self):
        arena = make_arena(signature_words=2)
        arena.add("a", unit(1), np.array([7, 9], dtype=np.uint64))
        assert arena.signatures[0].tolist() == [7, 9]


class TestAddBatch:
    def test_batch_matches_single_adds(self):
        single = make_arena()
        batch = make_arena()
        matrix = np.stack([unit(seed) for seed in range(10)])
        for seed in range(10):
            single.add(seed, matrix[seed])
        batch.add_batch(list(range(10)), matrix)
        assert np.array_equal(single.matrix, batch.matrix)
        assert single.keys() == batch.keys()

    def test_duplicate_keys_rejected(self):
        with pytest.raises(ValueError):
            make_arena().add_batch(["a", "a"], np.stack([unit(1), unit(2)]))

    def test_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            make_arena().add_batch(["a"], np.stack([unit(1), unit(2)]))

    def test_zero_row_rejected(self):
        with pytest.raises(ValueError):
            make_arena().add_batch(["a", "b"], np.stack([unit(1), np.zeros(DIM)]))


class TestTombstones:
    def test_remove_is_a_tombstone(self):
        arena = make_arena()
        for position in range(4):
            arena.add(position, unit(position))
        arena.remove(1)
        assert len(arena) == 3
        assert 1 not in arena
        assert arena.size == 4  # the slot is still occupied, just dead
        assert arena.dead_count == 1
        assert not arena.alive[1]

    def test_remove_missing_raises(self):
        with pytest.raises(KeyError):
            make_arena().remove("ghost")

    def test_keys_skip_dead_rows(self):
        arena = make_arena()
        for position in range(5):
            arena.add(position, unit(position))
        arena.remove(2)
        assert arena.keys() == [0, 1, 3, 4]

    def test_threshold_triggers_compaction(self):
        arena = make_arena()
        for position in range(40):
            arena.add(position, unit(position))
        generation = arena.generation
        # At or below the 25% dead-fraction threshold: no compaction yet.
        for victim in range(10):
            assert arena.remove(victim) is False
        assert arena.generation == generation
        # Strictly crossing it compacts.
        assert arena.remove(10) is True
        assert arena.generation == generation + 1
        assert arena.dead_count == 0
        assert arena.size == len(arena) == 29

    def test_compaction_preserves_order_and_content(self):
        arena = make_arena()
        for position in range(40):
            arena.add(position, unit(position))
        for victim in (3, 17, 5, 30, 12, 0, 39, 21, 8, 9):
            arena.remove(victim)
        survivors = arena.keys()
        assert survivors == sorted(survivors)  # insertion order preserved
        for key in survivors:
            assert np.allclose(arena.vector_of(key), unit(key), atol=1e-6)
            assert arena.key_at(arena.row_of(key)) == key

    def test_explicit_compact_is_idempotent(self):
        arena = make_arena()
        for position in range(8):
            arena.add(position, unit(position))
        arena.remove(4)
        arena.compact()
        generation = arena.generation
        arena.compact()  # nothing dead: no-op, no generation bump
        assert arena.generation == generation

    def test_add_after_compaction_reuses_space(self):
        arena = make_arena(initial_capacity=64)
        for position in range(40):
            arena.add(position, unit(position))
        for victim in range(20):
            arena.remove(victim)
        row = arena.add("fresh", unit(99))
        assert row == arena.size - 1
        assert arena.key_at(row) == "fresh"


class TestPersistence:
    def test_roundtrip(self, tmp_path):
        arena = make_arena(signature_words=2)
        for position in range(12):
            arena.add(
                f"k{position}",
                unit(position),
                np.array([position, position * 3], dtype=np.uint64),
            )
        arena.remove("k4")
        path = arena.save(tmp_path / "arena.npz")
        restored = VectorArena.load(path)
        assert restored.keys() == arena.keys()
        assert restored.signature_words == 2
        for key in arena.keys():
            assert np.array_equal(restored.vector_of(key), arena.vector_of(key))
            assert np.array_equal(
                restored.signatures[restored.row_of(key)],
                arena.signatures[arena.row_of(key)],
            )
        # Tombstones never ship: the restored arena is dense.
        assert restored.dead_count == 0

    def test_roundtrip_without_signatures(self, tmp_path):
        arena = make_arena()
        arena.add("only", unit(7))
        restored = VectorArena.load(arena.save(tmp_path / "plain.npz"))
        assert restored.keys() == ["only"]
        assert restored.signature_words == 0


BACKENDS = {
    "lsh": lambda: SimHashLSHIndex(DIM, n_bits=64, n_bands=16),
    "exact": lambda: ExactCosineIndex(DIM),
    "pivot": lambda: PivotFilterIndex(DIM),
}


@pytest.mark.parametrize("backend", sorted(BACKENDS))
class TestCanonicalValidation:
    """Satellite: one canonical error surface across all three backends."""

    def test_add_wrong_length(self, backend):
        with pytest.raises(DimensionMismatchError):
            BACKENDS[backend]().add("a", np.ones(DIM + 3))

    def test_add_wrong_ndim(self, backend):
        with pytest.raises(DimensionMismatchError):
            BACKENDS[backend]().add("a", np.ones((2, DIM)))

    def test_query_wrong_shape(self, backend):
        index = BACKENDS[backend]()
        index.add("a", unit(1))
        with pytest.raises(DimensionMismatchError):
            index.query(np.ones(DIM - 1), 1)

    def test_search_batch_wrong_shape(self, backend):
        index = BACKENDS[backend]()
        index.add("a", unit(1))
        with pytest.raises(DimensionMismatchError):
            index.search_batch(np.ones((2, DIM + 1)), 1)

    def test_zero_vector_value_error(self, backend):
        with pytest.raises(ValueError):
            BACKENDS[backend]().add("z", np.zeros(DIM))

    def test_shared_arena_substrate(self, backend):
        index = BACKENDS[backend]()
        index.add("a", unit(1))
        assert isinstance(index.arena, VectorArena)
        assert index.arena.matrix.dtype == np.float32


class TestMutationGeneration:
    """The monotonic content-mutation counter result caches key on."""

    def test_every_mutation_path_moves_it(self):
        arena = make_arena()
        assert arena.mutation_generation == 0
        arena.add("a", unit(1))
        g1 = arena.mutation_generation
        assert g1 > 0
        arena.add_batch(["b", "c"], np.stack([unit(2), unit(3)]))
        g2 = arena.mutation_generation
        assert g2 > g1
        arena.remove("b")
        g3 = arena.mutation_generation
        assert g3 > g2
        arena.compact()
        assert arena.mutation_generation > g3

    def test_adopt_counts_as_a_mutation(self):
        arena = make_arena()
        matrix = np.stack([unit(1), unit(2)])
        arena.adopt(["a", "b"], matrix)
        assert arena.mutation_generation > 0

    def test_columnar_index_exposes_it(self):
        for index in (
            ExactCosineIndex(DIM),
            SimHashLSHIndex(DIM, n_bits=32, n_bands=8),
            PivotFilterIndex(DIM),
        ):
            assert index.mutation_generation == 0
            index.add("a", unit(1))
            after_add = index.mutation_generation
            assert after_add > 0
            index.update("a", unit(2))  # remove + add: moves at least once
            assert index.mutation_generation > after_add

    def test_sharded_sum_is_monotonic_across_shards(self):
        from repro.index.sharding import ShardedIndex

        index = ShardedIndex(DIM, lambda: ExactCosineIndex(DIM), n_shards=3)
        seen = [index.mutation_generation]
        for key in range(12):
            index.add(key, unit(key))
            seen.append(index.mutation_generation)
        for key in range(0, 12, 2):
            index.remove(key)
            seen.append(index.mutation_generation)
        assert seen == sorted(seen)
        assert len(set(seen)) == len(seen)  # strictly increasing

    def test_compaction_threshold_churn_keeps_counting(self):
        arena = make_arena()
        keys = list(range(64))
        arena.add_batch(keys, np.stack([unit(k) for k in keys]))
        before = arena.mutation_generation
        removed = 0
        for key in range(0, 64, 2):
            arena.remove(key)
            removed += 1
        # 32 removals out of 64 rows crossed the 25% dead threshold at
        # least once, so compactions added their own bumps on top.
        assert arena.mutation_generation > before + removed
