"""Tests for repro.core.persistence: index artifact save/load.

Covers the current format-3 artifact (uncompressed, memory-mapped,
zero-copy arena adoption), the ``compress=True`` opt-in, legacy format-1
and format-2 compatibility, and sharded-engine round trips.
"""

from __future__ import annotations

import zipfile

import numpy as np
import pytest

from repro.core.config import WarpGateConfig
from repro.core.persistence import _save_legacy, load_index, save_index
from repro.core.warpgate import WarpGate
from repro.errors import DiscoveryError
from repro.storage.schema import ColumnRef
from repro.warehouse.connector import WarehouseConnector


@pytest.fixture()
def indexed_system(toy_connector) -> WarpGate:
    system = WarpGate(WarpGateConfig(threshold=0.3))
    system.index_corpus(toy_connector)
    return system


class TestSave:
    def test_unindexed_rejected(self, tmp_path):
        with pytest.raises(DiscoveryError):
            save_index(WarpGate(), tmp_path / "x.npz")

    def test_artifact_written(self, indexed_system, tmp_path):
        artifact = save_index(indexed_system, tmp_path / "index.npz")
        assert artifact.exists()
        assert artifact.suffix == ".npz"

    def test_suffix_normalized(self, indexed_system, tmp_path):
        artifact = save_index(indexed_system, tmp_path / "index")
        assert artifact.suffix == ".npz"
        assert artifact.exists()


class TestLoad:
    def test_missing_artifact(self, tmp_path):
        with pytest.raises(DiscoveryError):
            load_index(tmp_path / "absent.npz")

    def test_roundtrip_preserves_vectors(self, indexed_system, tmp_path):
        artifact = save_index(indexed_system, tmp_path / "index.npz")
        restored = load_index(artifact)
        assert restored.indexed_count == indexed_system.indexed_count
        ref = ColumnRef("db", "customers", "company")
        assert np.allclose(restored.vector_of(ref), indexed_system.vector_of(ref))

    def test_roundtrip_preserves_config(self, indexed_system, tmp_path):
        artifact = save_index(indexed_system, tmp_path / "index.npz")
        restored = load_index(artifact)
        assert restored.config == indexed_system.config

    def test_restored_index_answers_vector_queries(self, indexed_system, tmp_path):
        artifact = save_index(indexed_system, tmp_path / "index.npz")
        restored = load_index(artifact)
        query_ref = ColumnRef("db", "customers", "company")
        vector = indexed_system.vector_of(query_ref)
        result = restored.search_vector(vector, 3, exclude=query_ref)
        assert result.refs[0] == ColumnRef("db", "vendors", "vendor_name")

    def test_restored_index_with_connector_answers_search(
        self, indexed_system, tmp_path, toy_warehouse
    ):
        artifact = save_index(indexed_system, tmp_path / "index.npz")
        restored = load_index(artifact)
        restored.attach_connector(WarehouseConnector(toy_warehouse))
        query_ref = ColumnRef("db", "customers", "company")
        original = indexed_system.search(query_ref, 3).refs
        assert restored.search(query_ref, 3).refs == original


class TestFormat3:
    def test_artifact_is_uncompressed_by_default(self, indexed_system, tmp_path):
        artifact = save_index(indexed_system, tmp_path / "v3.npz")
        with zipfile.ZipFile(artifact) as archive:
            kinds = {info.compress_type for info in archive.infolist()}
        assert kinds == {zipfile.ZIP_STORED}

    def test_compress_opt_in(self, indexed_system, tmp_path):
        plain = save_index(indexed_system, tmp_path / "plain.npz")
        packed = save_index(indexed_system, tmp_path / "packed.npz", compress=True)
        with zipfile.ZipFile(packed) as archive:
            kinds = {info.compress_type for info in archive.infolist()}
        assert zipfile.ZIP_DEFLATED in kinds
        assert packed.stat().st_size < plain.stat().st_size
        restored = load_index(packed)
        assert restored.indexed_count == indexed_system.indexed_count

    def test_load_adopts_memory_mapped_vectors(self, indexed_system, tmp_path):
        artifact = save_index(indexed_system, tmp_path / "v3.npz")
        restored = load_index(artifact)
        arena = restored._index.arena
        assert not arena._owns_memory
        assert not arena._matrix.flags.writeable
        assert isinstance(arena._matrix.base, np.memmap)

    def test_mmap_load_equals_saved_vectors_exactly(self, indexed_system, tmp_path):
        artifact = save_index(indexed_system, tmp_path / "v3.npz")
        restored = load_index(artifact)
        for ref in indexed_system.indexed_refs:
            assert np.array_equal(
                restored.vector_of(ref), indexed_system.vector_of(ref)
            )

    def test_mutation_after_mmap_load(self, indexed_system, tmp_path, toy_warehouse):
        """Adopted read-only storage thaws transparently on first mutation."""
        artifact = save_index(indexed_system, tmp_path / "v3.npz")
        restored = load_index(artifact)
        restored.attach_connector(WarehouseConnector(toy_warehouse))
        victim = restored.indexed_refs[0]
        restored.remove_column(victim)
        assert not restored.is_column_indexed(victim)
        query_ref = ColumnRef("db", "customers", "company")
        vector = indexed_system.vector_of(query_ref)
        assert restored.search_vector(vector, 3, exclude=query_ref).candidates


class TestLegacyFormats:
    @pytest.mark.parametrize("version", [1, 2])
    def test_legacy_artifacts_still_load(self, indexed_system, tmp_path, version):
        artifact = _save_legacy(
            indexed_system, tmp_path / f"v{version}.npz", version=version
        )
        restored = load_index(artifact)
        assert restored.indexed_count == indexed_system.indexed_count
        assert restored.config == indexed_system.config
        query_ref = ColumnRef("db", "customers", "company")
        vector = indexed_system.vector_of(query_ref)
        want = indexed_system.search_vector(vector, 3, exclude=query_ref).refs
        assert restored.search_vector(vector, 3, exclude=query_ref).refs == want

    def test_legacy_v2_matches_v3_results(self, indexed_system, tmp_path):
        v2 = load_index(_save_legacy(indexed_system, tmp_path / "v2.npz", version=2))
        v3 = load_index(save_index(indexed_system, tmp_path / "v3.npz"))
        assert v2.indexed_count == v3.indexed_count
        for ref in indexed_system.indexed_refs:
            assert np.allclose(v2.vector_of(ref), v3.vector_of(ref), atol=1e-6)

    def test_unsupported_version_rejected(self, indexed_system, tmp_path):
        with pytest.raises(ValueError):
            _save_legacy(indexed_system, tmp_path / "v9.npz", version=9)


class TestShardedAndQuantized:
    @pytest.fixture()
    def sharded_system(self, toy_connector) -> WarpGate:
        system = WarpGate(WarpGateConfig(threshold=0.3, n_shards=3))
        system.index_corpus(toy_connector)
        return system

    def test_sharded_round_trip(self, sharded_system, tmp_path):
        artifact = save_index(sharded_system, tmp_path / "sharded.npz")
        restored = load_index(artifact)
        assert restored.config.n_shards == 3
        assert restored.indexed_count == sharded_system.indexed_count
        # The sharded restore re-partitions through bulk_load (which
        # re-normalizes, like the legacy path) — equality to float32
        # precision, not bitwise like the 1-shard zero-copy adoption.
        for ref in sharded_system.indexed_refs:
            assert np.allclose(
                restored.vector_of(ref), sharded_system.vector_of(ref), atol=1e-6
            )

    def test_sharded_results_match_single(self, sharded_system, tmp_path, toy_connector):
        single = WarpGate(WarpGateConfig(threshold=0.3))
        single.index_corpus(toy_connector)
        restored = load_index(save_index(sharded_system, tmp_path / "s.npz"))
        query_ref = ColumnRef("db", "customers", "company")
        vector = single.vector_of(query_ref)
        assert (
            restored.search_vector(vector, 3, exclude=query_ref).refs
            == single.search_vector(vector, 3, exclude=query_ref).refs
        )

    def test_quantized_config_round_trips(self, toy_connector, tmp_path):
        system = WarpGate(WarpGateConfig(threshold=0.3, quantize=True))
        system.index_corpus(toy_connector)
        restored = load_index(save_index(system, tmp_path / "q.npz"))
        assert restored.config.quantize
        assert restored._index.quantizer is not None


class TestSearchVector:
    def test_zero_vector_empty(self, indexed_system):
        result = indexed_system.search_vector(np.zeros(64), 3)
        assert result.candidates == []

    def test_without_exclude_returns_self(self, indexed_system):
        query_ref = ColumnRef("db", "customers", "company")
        vector = indexed_system.vector_of(query_ref)
        result = indexed_system.search_vector(vector, 3)
        assert query_ref in result.refs

    def test_timing_is_lookup_only(self, indexed_system):
        vector = indexed_system.vector_of(ColumnRef("db", "customers", "company"))
        timing = indexed_system.search_vector(vector, 3).timing
        assert timing.load_s == 0.0
        assert timing.embed_s == 0.0
        assert timing.lookup_s > 0.0
