"""Tests for repro.core.persistence: index artifact save/load."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import WarpGateConfig
from repro.core.persistence import load_index, save_index
from repro.core.warpgate import WarpGate
from repro.errors import DiscoveryError
from repro.storage.schema import ColumnRef
from repro.warehouse.connector import WarehouseConnector


@pytest.fixture()
def indexed_system(toy_connector) -> WarpGate:
    system = WarpGate(WarpGateConfig(threshold=0.3))
    system.index_corpus(toy_connector)
    return system


class TestSave:
    def test_unindexed_rejected(self, tmp_path):
        with pytest.raises(DiscoveryError):
            save_index(WarpGate(), tmp_path / "x.npz")

    def test_artifact_written(self, indexed_system, tmp_path):
        artifact = save_index(indexed_system, tmp_path / "index.npz")
        assert artifact.exists()
        assert artifact.suffix == ".npz"

    def test_suffix_normalized(self, indexed_system, tmp_path):
        artifact = save_index(indexed_system, tmp_path / "index")
        assert artifact.suffix == ".npz"
        assert artifact.exists()


class TestLoad:
    def test_missing_artifact(self, tmp_path):
        with pytest.raises(DiscoveryError):
            load_index(tmp_path / "absent.npz")

    def test_roundtrip_preserves_vectors(self, indexed_system, tmp_path):
        artifact = save_index(indexed_system, tmp_path / "index.npz")
        restored = load_index(artifact)
        assert restored.indexed_count == indexed_system.indexed_count
        ref = ColumnRef("db", "customers", "company")
        assert np.allclose(restored.vector_of(ref), indexed_system.vector_of(ref))

    def test_roundtrip_preserves_config(self, indexed_system, tmp_path):
        artifact = save_index(indexed_system, tmp_path / "index.npz")
        restored = load_index(artifact)
        assert restored.config == indexed_system.config

    def test_restored_index_answers_vector_queries(self, indexed_system, tmp_path):
        artifact = save_index(indexed_system, tmp_path / "index.npz")
        restored = load_index(artifact)
        query_ref = ColumnRef("db", "customers", "company")
        vector = indexed_system.vector_of(query_ref)
        result = restored.search_vector(vector, 3, exclude=query_ref)
        assert result.refs[0] == ColumnRef("db", "vendors", "vendor_name")

    def test_restored_index_with_connector_answers_search(
        self, indexed_system, tmp_path, toy_warehouse
    ):
        artifact = save_index(indexed_system, tmp_path / "index.npz")
        restored = load_index(artifact)
        restored.attach_connector(WarehouseConnector(toy_warehouse))
        query_ref = ColumnRef("db", "customers", "company")
        original = indexed_system.search(query_ref, 3).refs
        assert restored.search(query_ref, 3).refs == original


class TestSearchVector:
    def test_zero_vector_empty(self, indexed_system):
        result = indexed_system.search_vector(np.zeros(64), 3)
        assert result.candidates == []

    def test_without_exclude_returns_self(self, indexed_system):
        query_ref = ColumnRef("db", "customers", "company")
        vector = indexed_system.vector_of(query_ref)
        result = indexed_system.search_vector(vector, 3)
        assert query_ref in result.refs

    def test_timing_is_lookup_only(self, indexed_system):
        vector = indexed_system.vector_of(ColumnRef("db", "customers", "company"))
        timing = indexed_system.search_vector(vector, 3).timing
        assert timing.load_s == 0.0
        assert timing.embed_s == 0.0
        assert timing.lookup_s > 0.0
