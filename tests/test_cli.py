"""Tests for the command-line interface."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.cli import build_parser, main
from repro.storage.column import Column
from repro.storage.csv_codec import write_csv_file
from repro.storage.table import Table


@pytest.fixture()
def csv_lake(tmp_path) -> Path:
    """Two joinable CSVs plus one unrelated."""
    companies = ["Acme Dynamics Corp", "Global Logistics Inc", "Nova Analytics Llc"]
    write_csv_file(
        Table(
            "purchases",
            [
                Column("supplier", companies * 4),
                Column("amount", [float(i) for i in range(12)]),
            ],
        ),
        tmp_path / "purchases.csv",
    )
    write_csv_file(
        Table(
            "ratings",
            [
                Column("vendor", [c.upper() for c in companies]),
                Column("score", [4.5, 3.8, 4.9]),
            ],
        ),
        tmp_path / "ratings.csv",
    )
    write_csv_file(
        Table("weather", [Column("temp", [1.0, 2.0, 3.0])]),
        tmp_path / "weather.csv",
    )
    return tmp_path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    @pytest.mark.parametrize(
        "argv",
        [
            ["discover", "dir", "t.c"],
            ["index", "dir", "out.npz"],
            ["query", "a.npz", "dir", "t.c"],
            ["demo"],
            ["corpus-stats"],
            ["bench"],
        ],
    )
    def test_commands_parse(self, argv):
        args = build_parser().parse_args(argv)
        assert callable(args.handler)

    def test_model_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["discover", "d", "t.c", "--model", "gpt"])


class TestDiscover:
    def test_finds_join(self, csv_lake, capsys):
        code = main(
            ["discover", str(csv_lake), "purchases.supplier", "--threshold", "0.5"]
        )
        output = capsys.readouterr().out
        assert code == 0
        assert "ratings.vendor" in output

    def test_lookup_flag_verifies(self, csv_lake, capsys):
        code = main(
            [
                "discover",
                str(csv_lake),
                "purchases.supplier",
                "--threshold",
                "0.5",
                "--lookup",
            ]
        )
        output = capsys.readouterr().out
        assert code == 0
        assert "match rate" in output

    def test_no_results_exit_code(self, csv_lake, capsys):
        code = main(
            ["discover", str(csv_lake), "weather.temp", "--threshold", "0.999"]
        )
        assert code == 1

    def test_empty_directory_is_error(self, tmp_path, capsys):
        code = main(["discover", str(tmp_path), "t.c"])
        assert code == 2
        assert "no CSV files" in capsys.readouterr().err


class TestIndexAndQuery:
    def test_index_then_query(self, csv_lake, tmp_path, capsys):
        artifact = tmp_path / "lake.npz"
        assert (
            main(["index", str(csv_lake), str(artifact), "--threshold", "0.5"]) == 0
        )
        assert artifact.exists()
        code = main(
            [
                "query",
                str(artifact),
                str(csv_lake),
                "purchases.supplier",
                "--threshold",
                "0.5",
            ]
        )
        output = capsys.readouterr().out
        assert code == 0
        assert "ratings.vendor" in output


class TestBench:
    def test_writes_valid_report(self, tmp_path, capsys):
        import json

        from repro.eval.perf import validate_report

        output = tmp_path / "BENCH_index.json"
        code = main(
            [
                "bench",
                "--profile",
                "fast",
                "--sizes",
                "60,90,120",
                "--repeats",
                "1",
                "--dim",
                "32",
                "--batch-size",
                "8",
                "--output",
                str(output),
            ]
        )
        assert code == 0
        assert "Index perf suite" in capsys.readouterr().out
        payload = json.loads(output.read_text(encoding="utf-8"))
        assert validate_report(payload) == []
        assert [row["n_columns"] for row in payload["results"]] == [60, 90, 120]

    def test_bad_profile_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "--profile", "huge"])

    def test_too_few_sizes_is_error(self, tmp_path, capsys):
        code = main(
            [
                "bench",
                "--sizes",
                "50,80",
                "--repeats",
                "1",
                "--dim",
                "16",
                "--batch-size",
                "4",
                "--output",
                str(tmp_path / "out.json"),
            ]
        )
        assert code == 2
        assert "malformed" in capsys.readouterr().err


class TestCorpusStats:
    def test_subset(self, capsys):
        code = main(["corpus-stats", "--corpora", "XS"])
        output = capsys.readouterr().out
        assert code == 0
        assert "testbedXS" in output

    def test_unknown_corpus(self, capsys):
        code = main(["corpus-stats", "--corpora", "nope"])
        assert code == 2
