"""Query-result cache: generation keying makes staleness unrepresentable.

The acceptance property: a result cached under one index mutation
generation is never served once *any* mutation (add / remove / update /
compaction / adoption) has happened — because the generation is part of
the key, not because anyone remembered to invalidate.  The hypothesis
test drives hundreds of random mutation/query interleavings against all
three backends and checks every cache hit against a fresh probe.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._util import rng_for
from repro.core.config import WarpGateConfig
from repro.index.exact import ExactCosineIndex
from repro.index.lsh import SimHashLSHIndex
from repro.index.pivot import PivotFilterIndex
from repro.index.sharding import ShardedIndex
from repro.service import DiscoveryService, QueryResultCache
from repro.storage.column import Column
from repro.storage.schema import ColumnRef
from repro.storage.table import Table
from repro.warehouse.catalog import Warehouse
from repro.warehouse.connector import WarehouseConnector

DIM = 8
K = 4
FLOOR = -1.0

#: A fixed pool of distinct unit vectors the property test draws from.
_rng = rng_for("qcache-tests", "pool", DIM)
_POOL = _rng.standard_normal((16, DIM))
_POOL /= np.linalg.norm(_POOL, axis=1, keepdims=True)


class TestQueryResultCacheUnit:
    def test_key_embeds_every_probe_parameter(self):
        vector = _POOL[0]
        base = QueryResultCache.key(vector, 5, 0.5, None, 3)
        assert QueryResultCache.key(vector, 5, 0.5, None, 3) == base
        assert QueryResultCache.key(vector, 6, 0.5, None, 3) != base
        assert QueryResultCache.key(vector, 5, 0.4, None, 3) != base
        assert QueryResultCache.key(vector, 5, 0.5, "db.t.c", 3) != base
        assert QueryResultCache.key(vector, 5, 0.5, None, 4) != base
        assert QueryResultCache.key(_POOL[1], 5, 0.5, None, 3) != base

    def test_key_is_dtype_canonical(self):
        vector = _POOL[0]
        assert QueryResultCache.key(
            vector.astype(np.float32).astype(np.float64), 5, 0.5, None, 3
        ) == QueryResultCache.key(
            np.asarray(vector.astype(np.float32), dtype=np.float64), 5, 0.5, None, 3
        )

    def test_round_trip_freezes_candidates(self):
        cache = QueryResultCache(4)
        key = QueryResultCache.key(_POOL[0], K, FLOOR, None, 0)
        cache.put(key, [("a", 0.9), ("b", 0.8)])
        assert cache.get(key) == (("a", 0.9), ("b", 0.8))
        assert cache.stats()["hits"] == 1

    def test_lru_eviction_is_bounded(self):
        cache = QueryResultCache(2)
        keys = [QueryResultCache.key(_POOL[i], K, FLOOR, None, 0) for i in range(3)]
        for position, key in enumerate(keys):
            cache.put(key, [(f"k{position}", 1.0)])
        assert len(cache) == 2
        assert cache.get(keys[0]) is None  # evicted
        assert cache.get(keys[2]) is not None

    def test_disabled_capacity_rejected(self):
        with pytest.raises(ValueError):
            QueryResultCache(0)


def _make_index(backend: str):
    if backend == "lsh":
        return SimHashLSHIndex(DIM, n_bits=32, n_bands=8, threshold=FLOOR)
    if backend == "exact":
        return ExactCosineIndex(DIM)
    if backend == "pivot":
        return PivotFilterIndex(DIM, threshold=FLOOR)
    return ShardedIndex(DIM, lambda: ExactCosineIndex(DIM), n_shards=3)


_OPS = st.lists(
    st.tuples(
        st.sampled_from(["set", "del", "query"]),
        st.integers(min_value=0, max_value=15),
        st.integers(min_value=0, max_value=15),
    ),
    min_size=1,
    max_size=14,
)


@settings(max_examples=600, deadline=None)
@given(ops=_OPS, backend=st.sampled_from(["lsh", "exact", "pivot", "sharded"]))
def test_generation_keyed_hits_always_equal_fresh_probes(ops, backend):
    """A cache hit is byte-equal to re-probing; staleness cannot hit.

    Every query consults the cache under the *current*
    ``mutation_generation`` and cross-checks any hit against a fresh
    index probe.  If some mutation path failed to move the generation,
    an old entry would hit with outdated candidates and the comparison
    would fail.  600 randomized histories across all four backend
    shapes, each with up to 14 interleaved mutations/queries.
    """
    index = _make_index(backend)
    cache = QueryResultCache(64)
    for action, slot, other in ops:
        if action == "set":
            index.update(slot, _POOL[other])
        elif action == "del":
            if slot in index:
                index.remove(slot)
        else:
            if len(index) == 0:
                continue
            vector = _POOL[other]
            key = QueryResultCache.key(
                vector, K, FLOOR, None, index.mutation_generation
            )
            fresh = [
                (ref, float(score))
                for ref, score in index.query(vector, K, threshold=FLOOR)
            ]
            cached = cache.get(key)
            if cached is not None:
                assert list(cached) == fresh
            cache.put(key, fresh)


@settings(max_examples=60, deadline=None)
@given(
    removals=st.sets(st.integers(min_value=0, max_value=47), min_size=13, max_size=40)
)
def test_compaction_moves_the_generation(removals):
    """Tombstone-threshold compactions invalidate like any other mutation."""
    index = ExactCosineIndex(DIM)
    rng = rng_for("qcache-tests", "compaction", DIM)
    matrix = rng.standard_normal((48, DIM))
    index.bulk_load(list(range(48)), matrix)
    before = index.mutation_generation
    survivors = 48 - len(removals)
    for key in removals:
        index.remove(key)
    # >25% of 48 rows died: at least one compaction fired along the way.
    assert index.arena.generation >= 1
    assert index.mutation_generation >= before + len(removals) + 1
    # And the arena still answers correctly for the survivors.
    assert len(index) == survivors


class TestServiceLevelInvalidation:
    def make_service(self) -> tuple[DiscoveryService, ColumnRef]:
        warehouse = Warehouse("qcache")
        companies = ["acme corp", "globex inc", "initech llc", "umbrella co"]
        warehouse.add_table(
            "db",
            Table(
                "customers",
                [Column("id", [1, 2, 3, 4]), Column("company", companies)],
            ),
        )
        warehouse.add_table(
            "db",
            Table(
                "vendors",
                [Column("vid", [9, 8, 7, 6]), Column("vendor", companies)],
            ),
        )
        config = WarpGateConfig(model_name="hashing", dim=16, threshold=0.0)
        service = DiscoveryService(config)
        service.open(WarehouseConnector(warehouse))
        return service, ColumnRef("db", "customers", "company")

    def test_mutation_invalidates_cached_search(self):
        service, query = self.make_service()
        first = service.search(query, 8)
        repeat = service.search(query, 8)
        assert [str(c.ref) for c in repeat.candidates] == [
            str(c.ref) for c in first.candidates
        ]
        assert service.query_cache.stats()["hits"] >= 1
        # Mutate: add a joinable table; the next search must see it
        # without any explicit cache invalidation having been called.
        service.add_table(
            "db",
            Table(
                "suppliers",
                [
                    Column("sid", [11, 12, 13, 14]),
                    Column(
                        "supplier",
                        ["acme corp", "globex inc", "initech llc", "umbrella co"],
                    ),
                ],
            ),
        )
        after = service.search(query, 8)
        refs = [str(c.ref) for c in after.candidates]
        assert "db.suppliers.supplier" in refs
        # And dropping it disappears it again, through the same mechanism.
        service.drop_table("db", "suppliers")
        final = service.search(query, 8)
        assert "db.suppliers.supplier" not in [str(c.ref) for c in final.candidates]

    def test_cache_disabled_service_still_serves(self):
        warehouse = Warehouse("nocache")
        warehouse.add_table(
            "db",
            Table(
                "t",
                [Column("a", [1, 2, 3]), Column("b", ["x y", "y z", "z x"])],
            ),
        )
        config = WarpGateConfig(
            model_name="hashing", dim=16, threshold=0.0, query_cache_size=0
        )
        service = DiscoveryService(config)
        service.open(WarehouseConnector(warehouse))
        assert service.query_cache is None
        response = service.search(ColumnRef("db", "t", "b"), 3)
        assert "query_cache" not in service.stats().caches
        assert response is not None
