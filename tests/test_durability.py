"""Durable store components: WAL framing, checkpoint/recovery, fsck.

The crash-point *matrix* — kill the process at every registered fault
point and assert recovery restores the acknowledged state — lives in
``tests/test_failure_injection.py``; this module pins the component
contracts that matrix builds on, plus the respawn governor the
supervisors (procpool, mpserve) use to stop crash loops.
"""

from __future__ import annotations

import os
import signal
import tempfile
import time
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._util import RespawnGovernor, rng_for
from repro.core.config import WarpGateConfig
from repro.core.persistence import load_index_durable, save_index_durable
from repro.core.warpgate import WarpGate
from repro.durability import (
    DurableIndexStore,
    WriteAheadLog,
    faultpoints,
    fsck_store,
    scan_wal,
)
from repro.durability.wal import decode_vectors, encode_vectors
from repro.errors import (
    ArtifactCorruptionError,
    DiscoveryError,
    DurabilityError,
    ManifestError,
    RespawnLimitError,
    SegmentChecksumError,
    WalCorruptionError,
)
from repro.service.discovery import DiscoveryService
from repro.service.types import ServiceError
from repro.storage.column import Column
from repro.storage.schema import ColumnRef
from repro.storage.table import Table
from repro.warehouse.connector import WarehouseConnector

DIM = 16


@pytest.fixture(autouse=True)
def _clean_faultpoints():
    yield
    faultpoints.disarm_all()


def make_engine(n: int = 8, key: object = "base") -> tuple[WarpGate, list[ColumnRef]]:
    """A small indexed engine with deterministic unit vectors."""
    matrix = rng_for("durability-test", key).standard_normal((n, DIM))
    matrix /= np.linalg.norm(matrix, axis=1, keepdims=True)
    refs = [ColumnRef("db", f"t{i // 4}", f"c{i % 4}") for i in range(n)]
    system = WarpGate(WarpGateConfig(model_name="hashing", dim=DIM))
    system._index.bulk_load(refs, matrix.astype(np.float32))
    system._indexed = True
    return system, refs


def fresh_vector(key: object) -> np.ndarray:
    vector = rng_for("durability-vec", key).standard_normal(DIM)
    return (vector / np.linalg.norm(vector)).astype(np.float32)


def recover_state(directory: Path) -> dict[ColumnRef, np.ndarray]:
    """The store's recovered logical state as a ref -> vector dict."""
    with DurableIndexStore(directory, fsync="never") as store:
        _config, refs, vectors, _report = store.recover()
    return {ref: vectors[position] for position, ref in enumerate(refs)}


class TestWalFraming:
    def test_append_scan_roundtrip(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path, fsync="never") as wal:
            for seq in (1, 2, 3):
                wal.append({"seq": seq, "op": "remove", "refs": [["d", "t", f"c{seq}"]]})
        records, info = scan_wal(path)
        assert [record["seq"] for record in records] == [1, 2, 3]
        assert info["torn_tail_bytes"] == 0
        assert info["scanned_bytes"] == path.stat().st_size

    def test_torn_tail_is_reported_and_discarded(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path, fsync="never") as wal:
            wal.append({"seq": 1, "op": "remove", "refs": []})
            wal.append({"seq": 2, "op": "remove", "refs": []})
        data = path.read_bytes()
        path.write_bytes(data[:-5])  # crash mid-frame: short final record
        records, info = scan_wal(path)
        assert [record["seq"] for record in records] == [1]
        assert info["torn_tail_bytes"] > 0

    def test_complete_frame_crc_mismatch_is_corruption(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path, fsync="never") as wal:
            wal.append({"seq": 1, "op": "remove", "refs": []})
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF  # flip a payload byte; the frame stays complete
        path.write_bytes(bytes(data))
        with pytest.raises(WalCorruptionError):
            scan_wal(path)

    def test_sequence_regression_is_corruption(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path, fsync="never") as wal:
            wal.append({"seq": 5, "op": "remove", "refs": []})
            wal.append({"seq": 4, "op": "remove", "refs": []})
        with pytest.raises(WalCorruptionError):
            scan_wal(path)

    def test_missing_log_scans_empty(self, tmp_path):
        records, info = scan_wal(tmp_path / "absent.log")
        assert records == [] and info["torn_tail_bytes"] == 0

    def test_truncate_discards_everything(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path, fsync="always") as wal:
            wal.append({"seq": 1, "op": "remove", "refs": []})
            wal.truncate()
        assert path.stat().st_size == 0

    def test_unknown_fsync_policy_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            WriteAheadLog(tmp_path / "wal.log", fsync="sometimes")

    def test_vector_codec_is_bitwise(self):
        vectors = rng_for("codec").standard_normal((3, DIM)).astype(np.float32)
        assert np.array_equal(decode_vectors(encode_vectors(vectors), 3, DIM), vectors)


class TestStoreCheckpointAndRecovery:
    def test_checkpoint_recover_roundtrip(self, tmp_path):
        system, refs = make_engine()
        store = save_index_durable(system, tmp_path / "store")
        store.close()
        recovered, store, report = load_index_durable(tmp_path / "store")
        store.close()
        assert set(recovered.indexed_refs) == set(refs)
        for ref in refs:
            assert np.allclose(
                recovered.vector_of(ref), system.vector_of(ref), rtol=0, atol=1e-6
            )
        assert report["recovered_columns"] == len(refs)
        assert report["wal_records_replayed"] == 0

    def test_unindexed_engine_rejected(self, tmp_path):
        with pytest.raises(DiscoveryError):
            save_index_durable(WarpGate(), tmp_path / "store")

    def test_wal_replay_applies_acknowledged_mutations(self, tmp_path):
        system, refs = make_engine()
        with DurableIndexStore(tmp_path / "store", fsync="never") as store:
            store.checkpoint(system)
            extra = ColumnRef("db", "t9", "new")
            vector = fresh_vector("replay")
            store.log_upsert([extra], vector[None, :])
            store.log_remove([refs[0]])
        state = recover_state(tmp_path / "store")
        assert set(state) == (set(refs) - {refs[0]}) | {extra}
        assert np.array_equal(state[extra], vector)  # replay is bitwise

    def test_recovery_report_counts(self, tmp_path):
        system, refs = make_engine()
        with DurableIndexStore(tmp_path / "store", fsync="never") as store:
            store.checkpoint(system)
            store.log_remove([refs[0]])
            store.log_remove([refs[1]])
        with DurableIndexStore(tmp_path / "store", fsync="never") as store:
            _config, _refs, _vectors, report = store.recover()
        assert report["rows_from_segments"] == len(refs)
        assert report["wal_records_replayed"] == 2
        assert report["wal_records_skipped"] == 0
        assert report["torn_tail_bytes"] == 0
        assert report["recovered_columns"] == len(refs) - 2

    def test_checkpoint_compacts_wal_and_segments(self, tmp_path):
        system, refs = make_engine()
        store = DurableIndexStore(tmp_path / "store", fsync="never")
        first = store.checkpoint(system)
        store.log_remove([refs[0]])
        assert store.pending_records == 1
        second = store.checkpoint(system)
        store.close()
        assert second["manifest_seq"] == first["manifest_seq"] + 1
        assert store.pending_records == 0
        assert (tmp_path / "store" / "wal.log").stat().st_size == 0
        segments = sorted(p.name for p in (tmp_path / "store" / "segments").iterdir())
        assert segments == [second["segments"][0]["name"]]

    def test_auto_checkpoint_after_budget(self, tmp_path):
        system, refs = make_engine()
        store = DurableIndexStore(
            tmp_path / "store", fsync="never", checkpoint_every=2
        )
        store.ensure_base(system)
        store.log_remove([refs[0]])
        assert not store.maybe_checkpoint(system)
        store.log_remove([refs[1]])
        assert store.maybe_checkpoint(system)
        assert store.pending_records == 0
        store.close()

    def test_torn_wal_tail_discarded_on_recover(self, tmp_path):
        system, refs = make_engine()
        with DurableIndexStore(tmp_path / "store", fsync="never") as store:
            store.checkpoint(system)
            store.log_remove([refs[0]])
        wal_path = tmp_path / "store" / "wal.log"
        wal_path.write_bytes(wal_path.read_bytes() + b"\x99\x00\x00\x00oops")
        with DurableIndexStore(tmp_path / "store", fsync="never") as store:
            _config, recovered_refs, _vectors, report = store.recover()
        assert report["torn_tail_bytes"] > 0
        assert report["wal_records_replayed"] == 1
        assert set(recovered_refs) == set(refs) - {refs[0]}

    def test_segment_corruption_is_typed(self, tmp_path):
        system, _refs = make_engine()
        with DurableIndexStore(tmp_path / "store", fsync="never") as store:
            manifest = store.checkpoint(system)
        segment = tmp_path / "store" / "segments" / manifest["segments"][0]["name"]
        data = bytearray(segment.read_bytes())
        data[len(data) // 2] ^= 0xFF
        segment.write_bytes(bytes(data))
        with DurableIndexStore(tmp_path / "store", fsync="never") as store:
            with pytest.raises(SegmentChecksumError):
                store.recover()

    def test_truncated_segment_is_typed(self, tmp_path):
        system, _refs = make_engine()
        with DurableIndexStore(tmp_path / "store", fsync="never") as store:
            manifest = store.checkpoint(system)
        segment = tmp_path / "store" / "segments" / manifest["segments"][0]["name"]
        segment.write_bytes(segment.read_bytes()[:-16])
        with DurableIndexStore(tmp_path / "store", fsync="never") as store:
            with pytest.raises(ArtifactCorruptionError):
                store.recover()

    def test_missing_segment_is_typed(self, tmp_path):
        system, _refs = make_engine()
        with DurableIndexStore(tmp_path / "store", fsync="never") as store:
            manifest = store.checkpoint(system)
        (tmp_path / "store" / "segments" / manifest["segments"][0]["name"]).unlink()
        with DurableIndexStore(tmp_path / "store", fsync="never") as store:
            with pytest.raises(SegmentChecksumError):
                store.recover()

    def test_garbage_manifest_is_typed(self, tmp_path):
        system, _refs = make_engine()
        with DurableIndexStore(tmp_path / "store", fsync="never") as store:
            store.checkpoint(system)
        (tmp_path / "store" / "MANIFEST").write_text("not json {", encoding="utf-8")
        with pytest.raises(ManifestError):
            DurableIndexStore(tmp_path / "store", fsync="never")

    def test_upsert_shape_mismatch_rejected(self, tmp_path):
        system, refs = make_engine()
        with DurableIndexStore(tmp_path / "store", fsync="never") as store:
            store.checkpoint(system)
            with pytest.raises(DurabilityError):
                store.log_upsert([refs[0], refs[1]], fresh_vector("x")[None, :])


class TestReplayEqualsOracle:
    """Property: WAL replay over any op history equals the dict oracle."""

    @settings(max_examples=12, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(st.sampled_from(["upsert", "remove"]), st.integers(0, 7)),
            max_size=24,
        )
    )
    def test_wal_replay_matches_in_memory_oracle(self, ops):
        system, refs = make_engine(n=4, key="oracle-base")
        pool = [ColumnRef("db", "pool", f"c{slot}") for slot in range(8)]
        with tempfile.TemporaryDirectory() as tmp:
            directory = Path(tmp) / "store"
            oracle: dict[ColumnRef, np.ndarray] = {}
            with DurableIndexStore(directory, fsync="never") as store:
                store.checkpoint(system)
                for ref in refs:
                    oracle[ref] = np.asarray(system.vector_of(ref))
                for step, (op, slot) in enumerate(ops):
                    ref = pool[slot]
                    if op == "upsert":
                        vector = fresh_vector(("oracle", step))
                        store.log_upsert([ref], vector[None, :])
                        oracle[ref] = vector
                    else:
                        store.log_remove([ref])
                        oracle.pop(ref, None)
            state = recover_state(directory)
            assert set(state) == set(oracle)
            for ref, vector in oracle.items():
                assert np.array_equal(state[ref], vector)


class TestFsck:
    def _store(self, tmp_path) -> Path:
        system, refs = make_engine()
        with DurableIndexStore(tmp_path / "store", fsync="never") as store:
            store.checkpoint(system)
            store.log_remove([refs[0]])
        return tmp_path / "store"

    def test_clean_store(self, tmp_path):
        directory = self._store(tmp_path)
        report = fsck_store(directory)
        assert report["clean"]
        assert report["wal"]["records"] == 1
        assert report["segments"][0]["crc_ok"]

    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(DurabilityError):
            fsck_store(tmp_path / "nowhere")

    def test_torn_tail_is_a_warning(self, tmp_path):
        directory = self._store(tmp_path)
        wal_path = directory / "wal.log"
        wal_path.write_bytes(wal_path.read_bytes() + b"\x40\x00\x00\x00torn")
        report = fsck_store(directory)
        assert not report["clean"] and not report["problems"]
        assert any("torn" in warning for warning in report["warnings"])

    def test_orphan_segment_is_a_warning(self, tmp_path):
        directory = self._store(tmp_path)
        (directory / "segments" / "seg-999999.npz").write_bytes(b"leftover")
        report = fsck_store(directory)
        assert not report["clean"] and not report["problems"]
        assert report["orphan_segments"] == ["seg-999999.npz"]

    def test_corrupt_segment_is_a_problem(self, tmp_path):
        directory = self._store(tmp_path)
        segment = next((directory / "segments").glob("seg-*.npz"))
        data = bytearray(segment.read_bytes())
        data[len(data) // 2] ^= 0xFF
        segment.write_bytes(bytes(data))
        report = fsck_store(directory)
        assert not report["clean"]
        assert any("CRC" in problem for problem in report["problems"])

    def test_corrupt_wal_frame_is_a_problem(self, tmp_path):
        directory = self._store(tmp_path)
        wal_path = directory / "wal.log"
        data = bytearray(wal_path.read_bytes())
        data[-1] ^= 0xFF
        wal_path.write_bytes(bytes(data))
        report = fsck_store(directory)
        assert not report["clean"]
        assert report["problems"]


class TestServiceDurability:
    def _open(self, tmp_path, toy_warehouse) -> DiscoveryService:
        config = WarpGateConfig(threshold=0.3).with_durability(
            str(tmp_path / "store"), fsync="never"
        )
        service = DiscoveryService(config)
        service.open(WarehouseConnector(toy_warehouse))
        return service

    def test_mutations_survive_recovery(self, tmp_path, toy_warehouse):
        service = self._open(tmp_path, toy_warehouse)
        service.add_table(
            "db", Table("extra", [Column("widget", ["alpha", "beta", "gamma"])])
        )
        service.drop_table("db", "colors")
        live_refs = set(service.engine.indexed_refs)
        stats = service.stats()
        assert stats.durability is not None
        assert stats.durability["wal_pending_records"] >= 2
        service.close()

        recovered = DiscoveryService.load_durable(tmp_path / "store")
        assert recovered.recovery_report["wal_records_replayed"] >= 2
        assert set(recovered.engine.indexed_refs) == live_refs
        for ref in live_refs:
            assert np.allclose(
                recovered.engine.vector_of(ref),
                service.engine.vector_of(ref),
                rtol=0,
                atol=1e-6,
            )
        recovered.close()

    def test_search_parity_live_vs_recovered(self, tmp_path, toy_warehouse):
        service = self._open(tmp_path, toy_warehouse)
        query = ColumnRef("db", "customers", "company")
        live = service.engine.search(query, 5)
        service.close()
        recovered = DiscoveryService.load_durable(
            tmp_path / "store", connector=WarehouseConnector(toy_warehouse)
        )
        replayed = recovered.engine.search(query, 5)
        recovered.close()
        assert [c.ref for c in live.candidates] == [c.ref for c in replayed.candidates]
        for a, b in zip(live.candidates, replayed.candidates):
            assert b.score == pytest.approx(a.score, abs=1e-6)

    def test_open_over_checkpointed_store_rejected(self, tmp_path, toy_warehouse):
        self._open(tmp_path, toy_warehouse).close()
        config = WarpGateConfig(threshold=0.3).with_durability(
            str(tmp_path / "store"), fsync="never"
        )
        second = DiscoveryService(config)
        with pytest.raises(ServiceError):
            second.open(WarehouseConnector(toy_warehouse))
        second.close()

    def test_service_checkpoint_compacts(self, tmp_path, toy_warehouse):
        service = self._open(tmp_path, toy_warehouse)
        service.drop_table("db", "colors")
        assert service.stats().durability["wal_pending_records"] >= 1
        manifest = service.checkpoint()
        assert manifest["manifest_seq"] == 2
        assert service.stats().durability["wal_pending_records"] == 0
        service.close()

    def test_in_memory_service_has_no_durability(self, toy_warehouse):
        service = DiscoveryService(WarpGateConfig(threshold=0.3))
        service.open(WarehouseConnector(toy_warehouse))
        assert service.stats().durability is None
        assert service.checkpoint() is None
        assert service.durable_store is None
        service.close()


class TestRespawnGovernor:
    def _governor(self, **kwargs):
        clock = {"t": 0.0}
        governor = RespawnGovernor(
            clock=lambda: clock["t"], rng=np.random.default_rng(0), **kwargs
        )
        return governor, clock

    def test_backoff_doubles_and_caps(self):
        governor, _clock = self._governor(
            base_delay_s=0.1, max_delay_s=0.5, jitter=0.0, max_failures=10
        )
        delays = []
        for _ in range(5):
            governor.record_failure()
            delays.append(governor.next_delay_s())
        assert delays == pytest.approx([0.1, 0.2, 0.4, 0.5, 0.5])

    def test_no_delay_when_window_clean(self):
        governor, _clock = self._governor(jitter=0.0)
        assert governor.next_delay_s() == 0.0

    def test_jitter_never_shortens_the_delay(self):
        governor, _clock = self._governor(base_delay_s=0.2, jitter=0.5)
        governor.record_failure()
        for _ in range(20):
            assert 0.2 <= governor.next_delay_s() <= 0.2 * 1.5

    def test_breaker_opens_then_ages_out(self):
        governor, clock = self._governor(max_failures=3, window_s=30.0, jitter=0.0)
        for _ in range(3):
            governor.record_failure()
        assert not governor.allow()
        clock["t"] += 31.0
        assert governor.allow()
        assert governor.recent_failures == 0

    def test_success_clears_the_window(self):
        governor, _clock = self._governor(max_failures=2, jitter=0.0)
        governor.record_failure()
        governor.record_success()
        assert governor.allow()
        assert governor.next_delay_s() == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            RespawnGovernor(base_delay_s=2.0, max_delay_s=1.0)
        with pytest.raises(ValueError):
            RespawnGovernor(max_failures=0)


class TestProcpoolBreaker:
    def test_respawn_limit_error_when_breaker_open(self):
        from repro.index.exact import ExactCosineIndex
        from repro.index.procpool import ProcessShardedIndex

        matrix = rng_for("breaker").standard_normal((8, DIM))
        matrix /= np.linalg.norm(matrix, axis=1, keepdims=True)
        pool = ProcessShardedIndex(DIM, lambda: ExactCosineIndex(DIM), n_shards=1)
        with pool:
            pool.bulk_load(list(range(8)), matrix)
            assert pool.query(matrix[0], 3)  # healthy round trip
            # One strike and the breaker is open: the next death must
            # surface RespawnLimitError instead of a silent respawn.
            pool._governors[0] = RespawnGovernor(
                base_delay_s=0.0, max_delay_s=0.0, max_failures=1, window_s=60.0
            )
            (pid,) = pool.worker_pids()
            os.kill(pid, signal.SIGKILL)
            deadline = time.time() + 10.0
            while time.time() < deadline:
                worker = pool._workers[0]
                if worker is None or not worker.process.is_alive():
                    break
                time.sleep(0.05)
            with pytest.raises(RespawnLimitError) as excinfo:
                pool.query(matrix[0], 3)
            assert excinfo.value.failures == 1
