"""Tests for repro.embedding.cooccur."""

from __future__ import annotations

import numpy as np
import pytest
from scipy import sparse

from repro.embedding.cooccur import CooccurrenceBuilder, ppmi_matrix
from repro.embedding.vocab import Vocabulary


def vocab_abc() -> Vocabulary:
    return Vocabulary().build([["a", "b", "c"]] * 2)


class TestCooccurrenceBuilder:
    def test_window_pairs_counted(self):
        builder = CooccurrenceBuilder(vocab_abc(), window=1)
        builder.add_sequence(["a", "b", "c"])
        matrix = builder.build_matrix()
        vocab = builder.vocabulary
        a, b, c = vocab.token_id("a"), vocab.token_id("b"), vocab.token_id("c")
        assert matrix[a, b] == 1
        assert matrix[b, c] == 1
        assert matrix[a, c] == 0  # distance 2 > window 1

    def test_wide_window_reaches_further(self):
        builder = CooccurrenceBuilder(vocab_abc(), window=2)
        builder.add_sequence(["a", "b", "c"])
        vocab = builder.vocabulary
        assert builder.build_matrix()[vocab.token_id("a"), vocab.token_id("c")] == 1

    def test_matrix_symmetric(self):
        builder = CooccurrenceBuilder(vocab_abc(), window=2)
        builder.add_sequence(["a", "b", "a", "c"])
        matrix = builder.build_matrix().toarray()
        assert np.allclose(matrix, matrix.T)

    def test_oov_tokens_skipped(self):
        builder = CooccurrenceBuilder(vocab_abc(), window=1)
        builder.add_sequence(["a", "zzz", "b"])  # zzz occupies a position
        vocab = builder.vocabulary
        # a and b are 2 positions apart -> outside window 1.
        assert builder.build_matrix()[vocab.token_id("a"), vocab.token_id("b")] == 0

    def test_self_pairs_ignored(self):
        builder = CooccurrenceBuilder(vocab_abc(), window=1)
        builder.add_sequence(["a", "a"])
        vocab = builder.vocabulary
        assert builder.build_matrix()[vocab.token_id("a"), vocab.token_id("a")] == 0

    def test_weight_scales_counts(self):
        builder = CooccurrenceBuilder(vocab_abc(), window=1)
        builder.add_sequence(["a", "b"], weight=0.5)
        vocab = builder.vocabulary
        assert builder.build_matrix()[vocab.token_id("a"), vocab.token_id("b")] == 0.5

    def test_empty_builder_matrix(self):
        builder = CooccurrenceBuilder(vocab_abc())
        matrix = builder.build_matrix()
        assert matrix.shape == (3, 3)
        assert matrix.nnz == 0

    def test_unfrozen_vocab_rejected(self):
        vocab = Vocabulary()
        vocab.add_document(["a"])
        with pytest.raises(RuntimeError):
            CooccurrenceBuilder(vocab)

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            CooccurrenceBuilder(vocab_abc(), window=0)

    def test_pair_count(self):
        builder = CooccurrenceBuilder(vocab_abc(), window=2)
        builder.add_sequences([["a", "b"], ["b", "c"]])
        assert builder.pair_count == 2


class TestPpmi:
    def test_uniform_matrix_has_zero_pmi(self):
        # Fully uniform joint distribution -> PMI = 0 everywhere -> clipped
        # to an empty matrix.  (A zero diagonal would *create* association.)
        counts = sparse.csr_matrix(np.ones((3, 3)))
        assert ppmi_matrix(counts).nnz == 0

    def test_associated_pair_positive(self):
        counts = sparse.csr_matrix(
            np.array([[0.0, 10.0, 0.0], [10.0, 0.0, 1.0], [0.0, 1.0, 0.0]])
        )
        ppmi = ppmi_matrix(counts).toarray()
        assert ppmi[0, 1] > 0

    def test_shift_reduces_mass(self):
        counts = sparse.csr_matrix(
            np.array([[0.0, 10.0, 0.0], [10.0, 0.0, 1.0], [0.0, 1.0, 0.0]])
        )
        plain = ppmi_matrix(counts).sum()
        shifted = ppmi_matrix(counts, shift=0.5).sum()
        assert shifted < plain

    def test_empty_matrix_passthrough(self):
        counts = sparse.csr_matrix((3, 3))
        assert ppmi_matrix(counts).nnz == 0

    def test_values_non_negative(self):
        rng = np.random.default_rng(0)
        dense = rng.integers(0, 5, size=(6, 6)).astype(float)
        dense = dense + dense.T
        np.fill_diagonal(dense, 0)
        ppmi = ppmi_matrix(sparse.csr_matrix(dense))
        assert (ppmi.data >= 0).all() if ppmi.nnz else True
