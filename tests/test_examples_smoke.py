"""Smoke tests: every example script imports and the fast ones run."""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
ALL_EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def load_example(path: Path):
    """Import an example module without executing its __main__ block."""
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
    finally:
        sys.modules.pop(spec.name, None)
    return module


class TestExamplesExist:
    def test_at_least_three_examples(self):
        assert len(ALL_EXAMPLES) >= 3

    def test_quickstart_present(self):
        assert EXAMPLES_DIR / "quickstart.py" in ALL_EXAMPLES

    @pytest.mark.parametrize("path", ALL_EXAMPLES, ids=lambda p: p.stem)
    def test_example_has_docstring_and_main(self, path):
        source = path.read_text(encoding="utf-8")
        assert source.lstrip().startswith('"""')
        assert "def main()" in source
        assert '__name__ == "__main__"' in source


class TestExamplesImport:
    @pytest.mark.parametrize("path", ALL_EXAMPLES, ids=lambda p: p.stem)
    def test_importable(self, path):
        module = load_example(path)
        assert callable(module.main)


class TestFastExamplesRun:
    def test_csv_data_lake_runs(self, capsys):
        module = load_example(EXAMPLES_DIR / "csv_data_lake.py")
        module.main()
        output = capsys.readouterr().out
        assert "vendor_ratings.vendor" in output

    def test_quickstart_runs(self, capsys):
        module = load_example(EXAMPLES_DIR / "quickstart.py")
        module.main()
        output = capsys.readouterr().out
        assert "indexed" in output
        assert "ground-truth answers" in output
