"""Batched search and LSH↔exact equivalence across the columnar backends.

Two contracts are pinned here:

* ``search_batch`` returns the same results as per-query ``query`` calls
  (same keys in the same order; scores equal to float32 precision — the
  batched path scores through one GEMM, the single path through gathered
  matvecs) for every backend, including after churn and compaction;
* the columnar LSH index at an exhaustive banding (one row per band)
  returns results identical to a brute-force exact reference on random
  corpora, including after interleaved add/remove/compaction.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._util import rng_for
from repro.errors import DimensionMismatchError, EmptyIndexError
from repro.index.exact import ExactCosineIndex
from repro.index.lsh import SimHashLSHIndex
from repro.index.pivot import PivotFilterIndex

DIM = 24


def cloud(n: int, key: object) -> np.ndarray:
    matrix = rng_for("batch-test", key).standard_normal((n, DIM))
    return matrix / np.linalg.norm(matrix, axis=1, keepdims=True)


def make_index(backend: str, threshold: float = 0.2):
    if backend == "lsh":
        return SimHashLSHIndex(DIM, n_bits=64, n_bands=32, threshold=threshold)
    if backend == "exact":
        return ExactCosineIndex(DIM)
    return PivotFilterIndex(DIM, n_pivots=5, threshold=threshold)


def assert_batch_matches_sequential(index, queries, k, **kwargs):
    excludes = kwargs.pop("excludes", None)
    batch = index.search_batch(queries, k, excludes=excludes, **kwargs)
    assert len(batch) == len(queries)
    for position, got in enumerate(batch):
        exclude = excludes[position] if excludes is not None else None
        expected = index.query(queries[position], k, exclude=exclude, **kwargs)
        assert [key for key, _ in got] == [key for key, _ in expected]
        assert [score for _, score in got] == pytest.approx(
            [score for _, score in expected], abs=1e-6
        )


BACKENDS = ["lsh", "exact", "pivot"]


@pytest.mark.parametrize("backend", BACKENDS)
class TestBatchEqualsSequential:
    def test_plain_batch(self, backend):
        index = make_index(backend)
        points = cloud(120, "plain")
        for position in range(120):
            index.add(position, points[position])
        queries = cloud(17, "queries")
        assert_batch_matches_sequential(index, queries, 10)

    def test_threshold_override(self, backend):
        index = make_index(backend)
        points = cloud(80, "override")
        for position in range(80):
            index.add(position, points[position])
        assert_batch_matches_sequential(index, cloud(9, "q2"), 5, threshold=0.5)

    def test_excludes(self, backend):
        index = make_index(backend)
        points = cloud(60, "excl")
        for position in range(60):
            index.add(position, points[position])
        queries = points[:8]  # query the corpus itself, excluding self
        assert_batch_matches_sequential(
            index, queries, 6, excludes=list(range(8))
        )

    def test_zero_query_rows_get_empty_results(self, backend):
        index = make_index(backend)
        points = cloud(30, "zero")
        for position in range(30):
            index.add(position, points[position])
        queries = np.vstack([points[0], np.zeros(DIM), points[1]])
        batch = index.search_batch(queries, 5)
        assert batch[1] == []
        assert batch[0] and batch[2]

    def test_after_churn_and_compaction(self, backend):
        rng = np.random.default_rng(11)
        index = make_index(backend)
        live: dict[int, np.ndarray] = {}
        points = cloud(300, "churn")
        for step in range(200):
            if live and rng.random() < 0.45:
                victim = sorted(live)[int(rng.integers(len(live)))]
                index.remove(victim)
                del live[victim]
            else:
                index.add(step, points[step])
                live[step] = points[step]
        assert index.arena.generation > 0  # churn crossed the threshold
        assert_batch_matches_sequential(index, cloud(11, "churn-q"), 7)

    def test_empty_index_raises(self, backend):
        with pytest.raises(EmptyIndexError):
            make_index(backend).search_batch(cloud(2, "e"), 3)

    def test_bad_k_rejected(self, backend):
        index = make_index(backend)
        index.add("a", cloud(1, "a")[0])
        with pytest.raises(ValueError):
            index.search_batch(cloud(2, "k"), 0)

    def test_excludes_length_mismatch(self, backend):
        index = make_index(backend)
        index.add("a", cloud(1, "a")[0])
        with pytest.raises(ValueError):
            index.search_batch(cloud(3, "m"), 2, excludes=["a"])

    def test_empty_batch(self, backend):
        index = make_index(backend)
        index.add("a", cloud(1, "a")[0])
        assert index.search_batch(np.zeros((0, DIM)), 3) == []


class TestBulkLoad:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_bulk_load_equals_incremental_adds(self, backend):
        points = cloud(90, "bulk")
        loaded = make_index(backend)
        loaded.bulk_load(list(range(90)), points)
        incremental = make_index(backend)
        for position in range(90):
            incremental.add(position, points[position])
        assert np.array_equal(loaded.arena.matrix, incremental.arena.matrix)
        query = cloud(1, "bulk-q")[0]
        assert loaded.query(query, 8) == incremental.query(query, 8)


def exhaustive_lsh(threshold: float = 0.2) -> SimHashLSHIndex:
    """One row per band: every band is a single bit, so any pair with
    positive cosine shares a band with overwhelming probability — the
    banding S-curve at r=1, b=64 makes LSH exhaustive above a positive
    threshold (miss probability < (1-p)^64 with p > 0.5)."""
    return SimHashLSHIndex(DIM, n_bits=64, n_bands=64, threshold=threshold)


class TestLshEqualsBruteForce:
    """Satellite: columnar LSH ≡ brute-force exact on random corpora."""

    @settings(max_examples=12, deadline=None)
    @given(st.integers(0, 10_000))
    def test_identical_results_on_random_corpus(self, seed):
        points = cloud(70, ("bf", seed))
        lsh = exhaustive_lsh()
        exact = ExactCosineIndex(DIM)
        for position in range(70):
            lsh.add(position, points[position])
            exact.add(position, points[position])
        query = cloud(3, ("bf-q", seed))[0]
        got = lsh.query(query, 15)
        expected = exact.query(query, 15, threshold=0.2)
        assert [key for key, _ in got] == [key for key, _ in expected]
        assert [score for _, score in got] == pytest.approx(
            [score for _, score in expected], abs=1e-6
        )

    @settings(max_examples=8, deadline=None)
    @given(st.integers(0, 10_000))
    def test_identical_after_interleaved_mutation(self, seed):
        rng = np.random.default_rng(seed)
        points = cloud(200, ("bf-churn", seed))
        lsh = exhaustive_lsh()
        exact = ExactCosineIndex(DIM)
        live: set[int] = set()
        for step in range(140):
            if live and rng.random() < 0.45:
                victim = sorted(live)[int(rng.integers(len(live)))]
                lsh.remove(victim)
                exact.remove(victim)
                live.discard(victim)
            else:
                lsh.add(step, points[step])
                exact.add(step, points[step])
                live.add(step)
        query = cloud(1, ("bf-churn-q", seed))[0]
        if not live:
            # Churn emptied the corpus: both indexes must refuse queries.
            with pytest.raises(EmptyIndexError):
                lsh.query(query, 10)
            with pytest.raises(EmptyIndexError):
                exact.query(query, 10)
            return
        got = lsh.query(query, 10)
        expected = exact.query(query, 10, threshold=0.2)
        assert [key for key, _ in got] == [key for key, _ in expected]
        assert [score for _, score in got] == pytest.approx(
            [score for _, score in expected], abs=1e-6
        )

    def test_batched_lsh_equals_brute_force_reference(self):
        """search_batch against a pure-numpy reference ranking."""
        points = cloud(150, "bf-batch")
        lsh = exhaustive_lsh(threshold=0.3)
        lsh.bulk_load(list(range(150)), points)
        queries = cloud(9, "bf-batch-q")
        batch = lsh.search_batch(queries, 12)
        matrix = points.astype(np.float32)
        for position, got in enumerate(batch):
            scores = matrix @ queries[position].astype(np.float32)
            reference = sorted(
                (
                    (key, float(score))
                    for key, score in enumerate(scores)
                    if score >= 0.3
                ),
                key=lambda pair: (-pair[1], str(pair[0])),
            )[:12]
            assert [key for key, _ in got] == [key for key, _ in reference]
            assert [score for _, score in got] == pytest.approx(
                [score for _, score in reference], abs=1e-5
            )
