"""Tests for repro.storage.inference."""

from __future__ import annotations

from datetime import date

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import TypeInferenceError
from repro.storage.inference import coerce_value, infer_type, infer_types, is_null_literal
from repro.storage.types import DataType


class TestIsNullLiteral:
    @pytest.mark.parametrize("value", [None, "", "null", "NULL", "na", "N/A", " nan "])
    def test_nulls(self, value):
        assert is_null_literal(value)

    @pytest.mark.parametrize("value", ["0", "none?", 0, False, "x"])
    def test_non_nulls(self, value):
        assert not is_null_literal(value)


class TestInferType:
    def test_integers(self):
        assert infer_type(["1", "2", "-3"]) is DataType.INTEGER

    def test_floats(self):
        assert infer_type(["1.5", "2", "3e2"]) is DataType.FLOAT

    def test_int_overrides_float_when_all_ints(self):
        assert infer_type(["1", "2"]) is DataType.INTEGER

    def test_booleans(self):
        assert infer_type(["true", "false", "yes"]) is DataType.BOOLEAN

    def test_dates(self):
        assert infer_type(["2020-01-01", "2021-12-31"]) is DataType.DATE

    def test_strings(self):
        assert infer_type(["abc", "def"]) is DataType.STRING

    def test_mixed_falls_to_string(self):
        assert infer_type(["1", "abc"]) is DataType.STRING

    def test_nulls_ignored(self):
        assert infer_type([None, "", "5"]) is DataType.INTEGER

    def test_all_null_is_string(self):
        assert infer_type([None, "", "na"]) is DataType.STRING

    def test_native_python_values(self):
        assert infer_type([1, 2]) is DataType.INTEGER
        assert infer_type([1.5]) is DataType.FLOAT
        assert infer_type([True, False]) is DataType.BOOLEAN
        assert infer_type([date(2020, 1, 1)]) is DataType.DATE

    def test_cap_limits_scan(self):
        # First 3 look like ints; the string afterwards is past the cap.
        values = ["1", "2", "3", "oops"]
        assert infer_type(values, cap=3) is DataType.INTEGER

    def test_zero_one_is_boolean(self):
        # '0'/'1' literals satisfy the (narrower) boolean syntax first.
        assert infer_type(["0", "1", "0"]) is DataType.BOOLEAN


class TestInferTypes:
    def test_per_column(self):
        rows = [["1", "a", "2020-01-01"], ["2", "b", "2021-01-01"]]
        assert infer_types(rows, 3) == [
            DataType.INTEGER,
            DataType.STRING,
            DataType.DATE,
        ]

    def test_ragged_rows_tolerated(self):
        rows = [["1"], ["2", "x"]]
        types = infer_types(rows, 2)
        assert types[0] is DataType.INTEGER
        assert types[1] is DataType.STRING


class TestCoerceValue:
    def test_null_passthrough(self):
        assert coerce_value("", DataType.INTEGER) is None
        assert coerce_value(None, DataType.STRING) is None

    def test_string(self):
        assert coerce_value(42, DataType.STRING) == "42"

    def test_integer(self):
        assert coerce_value(" 42 ", DataType.INTEGER) == 42

    def test_float(self):
        assert coerce_value("2.5", DataType.FLOAT) == 2.5

    def test_int_to_float(self):
        assert coerce_value(3, DataType.FLOAT) == 3.0

    def test_boolean(self):
        assert coerce_value("yes", DataType.BOOLEAN) is True

    def test_date(self):
        assert coerce_value("2020-06-01", DataType.DATE) == date(2020, 6, 1)

    def test_bad_int_raises(self):
        with pytest.raises(TypeInferenceError):
            coerce_value("abc", DataType.INTEGER)

    def test_bool_is_not_int(self):
        with pytest.raises(TypeInferenceError):
            coerce_value(True, DataType.INTEGER)

    def test_bad_float_raises(self):
        with pytest.raises(TypeInferenceError):
            coerce_value("1,5", DataType.FLOAT)

    @given(st.integers(-10**9, 10**9))
    def test_int_roundtrip(self, value):
        assert coerce_value(str(value), DataType.INTEGER) == value

    @given(st.floats(allow_nan=False, allow_infinity=False, width=32))
    def test_float_roundtrip(self, value):
        assert coerce_value(str(value), DataType.FLOAT) == pytest.approx(value)


class TestInferThenCoerceProperty:
    @given(
        st.lists(
            st.one_of(
                st.integers(-1000, 1000).map(str),
                st.floats(-100, 100, allow_nan=False).map(str),
                st.sampled_from(["true", "false"]),
                st.text(min_size=1, max_size=10),
            ),
            min_size=1,
            max_size=20,
        )
    )
    def test_inferred_type_always_coercible(self, values):
        """Whatever type inference picks, every value must coerce to it."""
        dtype = infer_type(values)
        for value in values:
            coerce_value(value, dtype)  # must not raise
