"""Chaos harness: the serving stack under abuse and overload.

Every test here attacks a live server the way a hostile or failing
network does — slow-drip bodies, oversized uploads, garbage bytes,
mid-request disconnects, saturation bursts — and asserts the exact
degradation contract from DESIGN.md "Overload protection & graceful
degradation":

* protocol abuse gets a *well-formed JSON error envelope* with the
  right status (400/408/413), never a hung worker or an HTML page;
* a full admission queue *sheds* (fast 503 + ``Retry-After``) instead
  of queueing doomed work, while ``/healthz``/``/readyz`` stay
  answerable inline;
* deadlines bound every request end to end (504, never a hang);
* sustained shedding trips degraded mode (reduced fidelity, not-ready
  at the critical tier) and the service *recovers* once load drops.

Saturation is made deterministic where the assertion demands it: a test
thread holds the service's scan mutex so the worker pool is provably
busy, which pins queue occupancy without depending on scheduler luck.
"""

from __future__ import annotations

import http.client
import json
import socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core.config import WarpGateConfig
from repro.service import DiscoveryService, make_server
from repro.warehouse.connector import WarehouseConnector

QUERY = "db.customers.company"
# Overload knobs sized for test speed: degraded after 4 sheds in a 1s
# window, one recovery step per 0.2s of quiet.
_OVERLOAD = dict(
    degrade_shed_threshold=4, degrade_window_s=1.0, degrade_recovery_s=0.2
)


@pytest.fixture()
def service(toy_warehouse):
    svc = DiscoveryService(WarpGateConfig(threshold=0.3).with_overload(**_OVERLOAD))
    svc.open(WarehouseConnector(toy_warehouse))
    return svc


def _search_bytes(path: str = "/search", headers: dict | None = None) -> bytes:
    body = json.dumps({"query": QUERY, "k": 3}).encode()
    lines = [
        f"POST {path} HTTP/1.1",
        "Host: t",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode() + body


def _drain(sock: socket.socket, timeout: float = 5.0) -> bytes:
    """Read until EOF (every error/shed response closes the connection)."""
    sock.settimeout(timeout)
    chunks = []
    while True:
        try:
            chunk = sock.recv(65536)
        except (TimeoutError, OSError):
            break
        if not chunk:
            break
        chunks.append(chunk)
    return b"".join(chunks)


def _parse(raw: bytes) -> tuple[int, dict[str, str], dict]:
    """(status, lowercase headers, JSON body) of one raw HTTP response."""
    assert raw, "no response bytes"
    head, _, body = raw.partition(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    status = int(lines[0].split()[1])
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    payload = json.loads(body.decode("utf-8")) if body else {}
    return status, headers, payload


def _exchange(port: int, data: bytes, timeout: float = 5.0):
    with socket.create_connection(("127.0.0.1", port), timeout=timeout) as sock:
        sock.sendall(data)
        return _parse(_drain(sock, timeout))


def _request(port: int, method: str, path: str, body=None, headers=None):
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
    try:
        payload = json.dumps(body) if body is not None else None
        all_headers = {"Content-Type": "application/json"} if payload else {}
        all_headers.update(headers or {})
        connection.request(method, path, body=payload, headers=all_headers)
        response = connection.getresponse()
        return response.status, json.loads(response.read().decode("utf-8"))
    finally:
        connection.close()


def _p99(latencies: list[float]) -> float:
    ordered = sorted(latencies)
    return ordered[min(len(ordered) - 1, int(0.99 * len(ordered)))]


class _ScanLockHold:
    """Hold the service's scan mutex from a test thread for ``hold_s``.

    Every search embeds under that mutex (with a deadline check right
    after acquiring), so this makes "the pool is busy" and "this
    request's deadline expired while it waited" deterministic facts
    rather than races.
    """

    def __init__(self, service: DiscoveryService, hold_s: float) -> None:
        self._service = service
        self._hold_s = hold_s
        self._held = threading.Event()
        self._release = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        with self._service._scan_lock:  # noqa: SLF001 — chaos needs the choke point
            self._held.set()
            self._release.wait(self._hold_s)

    def __enter__(self) -> "_ScanLockHold":
        self._thread.start()
        assert self._held.wait(timeout=5)
        return self

    def __exit__(self, *exc_info) -> None:
        self._release.set()
        self._thread.join(timeout=5)


class TestSlowClientDefenses:
    def test_slowloris_body_times_out_408(self, service):
        with make_server(
            service, "127.0.0.1", 0, workers=2, body_read_timeout_s=0.4
        ) as server:
            port = server.server_address[1]
            head = (
                b"POST /search HTTP/1.1\r\nHost: t\r\n"
                b"Content-Type: application/json\r\nContent-Length: 50\r\n\r\n"
            )
            started = time.monotonic()
            with socket.create_connection(("127.0.0.1", port), timeout=5) as sock:
                sock.sendall(head + b'{"q')
                # Drip one byte at a time — each arrival resets a naive
                # per-read timeout, so only an absolute budget stops this.
                sock.settimeout(0.1)
                raw = b""
                while time.monotonic() - started < 3.0:
                    try:
                        chunk = sock.recv(65536)
                    except TimeoutError:
                        try:
                            sock.sendall(b"x")
                        except OSError:
                            break
                        continue
                    if not chunk:
                        break
                    raw += chunk
            status, headers, payload = _parse(raw)
            assert status == 408
            assert payload["error"]["code"] == "timeout"
            # The budget (0.4s) bounded the read — not the 3s drip window.
            assert time.monotonic() - started < 2.0
            assert headers.get("connection") == "close"

    def test_disconnect_mid_body_contained(self, service):
        with make_server(service, "127.0.0.1", 0, workers=2) as server:
            port = server.server_address[1]
            for _ in range(4):  # more abusers than a single worker
                sock = socket.create_connection(("127.0.0.1", port), timeout=5)
                sock.sendall(
                    b"POST /search HTTP/1.1\r\nHost: t\r\n"
                    b"Content-Length: 50\r\n\r\n{\"par"
                )
                sock.close()  # vanish mid-body
            # The pool survives: a well-behaved request round-trips as
            # soon as the abusers drain (an interim 503 is correct
            # shedding while they still occupy the pool, not a failure).
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                status, payload = _request(
                    port, "POST", "/search", {"query": QUERY, "k": 3}
                )
                if status == 200:
                    break
                time.sleep(0.1)
            assert status == 200
            assert payload["candidates"]
            status, payload = _request(port, "GET", "/healthz")
            assert status == 200 and payload["status"] == "ok"

    def test_disconnect_before_response_read(self, service):
        with make_server(service, "127.0.0.1", 0, workers=2) as server:
            port = server.server_address[1]
            for _ in range(4):
                sock = socket.create_connection(("127.0.0.1", port), timeout=5)
                sock.sendall(_search_bytes())
                sock.close()  # never read the response
            # The abusers may still occupy the pool/queue for a moment
            # (a 503 there is correct shedding, not a failure); the pool
            # must come back to clean serving promptly.
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                status, _ = _request(port, "POST", "/search", {"query": QUERY})
                if status == 200:
                    break
                time.sleep(0.1)
            assert status == 200


class TestPayloadLimits:
    def test_oversized_declared_body_rejected_pre_read_413(self, service):
        with make_server(
            service, "127.0.0.1", 0, workers=2, max_body_bytes=1024
        ) as server:
            port = server.server_address[1]
            head = (
                b"POST /search HTTP/1.1\r\nHost: t\r\n"
                b"Content-Type: application/json\r\nContent-Length: 4096\r\n\r\n"
            )
            started = time.monotonic()
            # No body byte is ever sent: the rejection must come from the
            # declared size alone, costing the server nothing.
            status, headers, payload = _exchange(port, head)
            assert status == 413
            assert payload["error"]["code"] == "payload_too_large"
            assert time.monotonic() - started < 2.0
            assert headers.get("connection") == "close"

    def test_absurd_content_length_413(self, service):
        with make_server(service, "127.0.0.1", 0, workers=2) as server:
            port = server.server_address[1]
            head = (
                b"POST /search HTTP/1.1\r\nHost: t\r\n"
                b"Content-Length: 1000000000000000\r\n\r\n"
            )
            status, _, payload = _exchange(port, head)
            assert status == 413
            assert payload["error"]["code"] == "payload_too_large"

    def test_negative_content_length_400(self, service):
        with make_server(service, "127.0.0.1", 0, workers=2) as server:
            port = server.server_address[1]
            head = (
                b"POST /search HTTP/1.1\r\nHost: t\r\n"
                b"Content-Length: -5\r\n\r\n"
            )
            status, _, payload = _exchange(port, head)
            assert status == 400
            assert payload["error"]["code"] == "bad_request"


class TestGarbageBytes:
    def test_binary_garbage_gets_json_400(self, service):
        with make_server(service, "127.0.0.1", 0, workers=2) as server:
            port = server.server_address[1]
            status, headers, payload = _exchange(
                port, b"\x16\x03\x01\x02\x00garbage\r\n\r\n"
            )
            assert status == 400
            assert payload["error"]["code"] == "bad_request"
            assert "application/json" in headers.get("content-type", "")

    def test_unsupported_method_gets_json_envelope(self, service):
        with make_server(service, "127.0.0.1", 0, workers=2) as server:
            port = server.server_address[1]
            status, _, payload = _exchange(
                port, b"BREW /search HTTP/1.1\r\nHost: t\r\n\r\n"
            )
            assert status == 501
            assert payload["error"]["code"] == "bad_request"

    def test_malformed_json_body_400(self, service):
        with make_server(service, "127.0.0.1", 0, workers=2) as server:
            port = server.server_address[1]
            body = b"{not json!"
            head = (
                b"POST /search HTTP/1.1\r\nHost: t\r\n"
                b"Content-Type: application/json\r\n"
                b"Content-Length: %d\r\nConnection: close\r\n\r\n" % len(body)
            )
            status, _, payload = _exchange(port, head + body)
            assert status == 400
            assert payload["error"]["code"] == "bad_request"
            assert "message" in payload["error"]

    def test_server_survives_garbage_storm(self, service):
        with make_server(service, "127.0.0.1", 0, workers=2) as server:
            port = server.server_address[1]
            for blob in (b"\x00" * 64, b"GET\r\n\r\n", b"\xff\xfe ohno\r\n\r\n"):
                try:
                    _exchange(port, blob, timeout=3.0)
                except AssertionError:
                    pass  # some garbage gets a silent close — also fine
            status, _ = _request(port, "POST", "/search", {"query": QUERY})
            assert status == 200


class TestDeadlines:
    def test_invalid_deadline_header_400(self, service):
        with make_server(service, "127.0.0.1", 0, workers=2) as server:
            port = server.server_address[1]
            for value in ("abc", "0", "-5"):
                status, payload = _request(
                    port,
                    "POST",
                    "/search",
                    {"query": QUERY},
                    headers={"X-Deadline-Ms": value},
                )
                assert status == 400
                assert payload["error"]["code"] == "bad_request"

    def test_search_deadline_expires_504(self, service):
        with make_server(service, "127.0.0.1", 0, workers=2) as server:
            port = server.server_address[1]
            with _ScanLockHold(service, hold_s=0.6):
                started = time.monotonic()
                status, payload = _request(
                    port,
                    "POST",
                    "/search",
                    {"query": QUERY},
                    headers={"X-Deadline-Ms": "100"},
                )
                elapsed = time.monotonic() - started
            assert status == 504
            assert payload["error"]["code"] == "deadline_exceeded"
            # Resolved when the choke point freed, never hung past it.
            assert elapsed < 3.0
            stats = service.stats().to_dict()
            assert stats["deadlines"]["misses"] >= 1

    def test_body_deadline_field_equivalent(self, service):
        with make_server(service, "127.0.0.1", 0, workers=2) as server:
            port = server.server_address[1]
            with _ScanLockHold(service, hold_s=0.6):
                status, payload = _request(
                    port, "POST", "/search", {"query": QUERY, "deadline_ms": 100}
                )
            assert status == 504
            assert payload["error"]["code"] == "deadline_exceeded"

    def test_batch_deadline_is_all_or_nothing_504(self, service):
        with make_server(service, "127.0.0.1", 0, workers=2) as server:
            port = server.server_address[1]
            with _ScanLockHold(service, hold_s=0.6):
                status, payload = _request(
                    port,
                    "POST",
                    "/search/batch",
                    {"requests": [{"query": QUERY}, {"query": QUERY, "k": 2}]},
                    headers={"X-Deadline-Ms": "100"},
                )
            assert status == 504
            assert payload["error"]["code"] == "deadline_exceeded"

    def test_paths_deadline_504(self, service):
        with make_server(service, "127.0.0.1", 0, workers=2) as server:
            port = server.server_address[1]
            def hold_graph_lock() -> None:
                with service._graph_lock:  # noqa: SLF001 — chaos needs the choke point
                    held.set()
                    time.sleep(0.6)

            held = threading.Event()
            hold = threading.Thread(target=hold_graph_lock, daemon=True)
            hold.start()
            assert held.wait(timeout=5)
            status, payload = _request(
                port,
                "POST",
                "/paths",
                {"src": "db.customers", "dst": "db.vendors", "max_hops": 2},
                headers={"X-Deadline-Ms": "100"},
            )
            hold.join(timeout=5)
            assert status == 504
            assert payload["error"]["code"] == "deadline_exceeded"

    def test_deadline_inherited_from_config_default(self, toy_warehouse):
        config = WarpGateConfig(threshold=0.3).with_overload(
            default_deadline_ms=100, **_OVERLOAD
        )
        svc = DiscoveryService(config)
        svc.open(WarehouseConnector(toy_warehouse))
        with make_server(svc, "127.0.0.1", 0, workers=2) as server:
            port = server.server_address[1]
            with _ScanLockHold(svc, hold_s=0.6):
                # No header, no body field: the config default applies.
                status, payload = _request(
                    port, "POST", "/search", {"query": QUERY}
                )
            assert status == 504
            assert payload["error"]["code"] == "deadline_exceeded"


class TestDegradedMode:
    def test_critical_tier_flips_readiness_not_liveness(self, service):
        with make_server(service, "127.0.0.1", 0, workers=2) as server:
            port = server.server_address[1]
            status, payload = _request(port, "GET", "/readyz")
            assert status == 200 and payload["ready"] is True
            for _ in range(8):  # 2x threshold -> critical
                service.degradation.record_shed()
            status, payload = _request(port, "GET", "/readyz")
            assert status == 503
            assert payload["ready"] is False
            assert "degraded" in payload["reason"]
            # Liveness is unaffected: degraded is not dead.
            status, payload = _request(port, "GET", "/healthz")
            assert status == 200 and payload["status"] == "ok"
            # Degraded-mode still *answers* searches (reduced fidelity).
            status, payload = _request(port, "POST", "/search", {"query": QUERY})
            assert status == 200

    def test_degradation_visible_in_stats_and_recovers(self, service):
        with make_server(service, "127.0.0.1", 0, workers=2) as server:
            port = server.server_address[1]
            base = service.engine.config.rerank_factor
            for _ in range(8):
                service.degradation.record_shed()
            _request(port, "POST", "/search", {"query": QUERY})  # applies tier
            _, stats = _request(port, "GET", "/stats")
            assert stats["degradation"]["tier"] == 2
            assert stats["degradation"]["rerank_factor_effective"] == 1
            assert stats["degradation"]["max_hops_cap"] == 1
            # Quiet time: window (1s) empties, then one 0.2s recovery
            # step per tier (readiness already flips back at tier 1 —
            # poll the tier itself for *full* recovery).
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                if service.degradation.tier() == 0:
                    break
                time.sleep(0.1)
            assert service.degradation.tier() == 0
            status, payload = _request(port, "GET", "/readyz")
            assert status == 200 and payload["ready"] is True
            _request(port, "POST", "/search", {"query": QUERY})  # re-applies
            _, stats = _request(port, "GET", "/stats")
            assert stats["degradation"]["tier"] == 0
            assert stats["degradation"]["rerank_factor_effective"] == base
            assert stats["degradation"]["max_hops_cap"] is None


class TestSaturationShedding:
    def test_sheds_are_fast_and_health_stays_inline(self, service):
        """At provable saturation: sheds answer in <10ms p99, health and
        readiness answer inline, the deadlined victim 504s instead of
        hanging, and the queued survivor completes after the burst."""
        with make_server(
            service, "127.0.0.1", 0, workers=1, admission_queue_depth=1
        ) as server:
            port = server.server_address[1]
            with _ScanLockHold(service, hold_s=30.0) as hold:
                # Victim A occupies the only worker (blocked at the scan
                # mutex) with a deadline far shorter than the hold.
                sock_a = socket.create_connection(("127.0.0.1", port), timeout=10)
                sock_a.sendall(_search_bytes(headers={"X-Deadline-Ms": "500"}))
                time.sleep(0.3)  # worker picked A up
                # Survivor B fills the depth-1 admission queue (no deadline).
                sock_b = socket.create_connection(("127.0.0.1", port), timeout=10)
                sock_b.sendall(_search_bytes())
                time.sleep(0.3)  # accept loop enqueued B
                # The server is now provably saturated: every further
                # request must shed.  Measure the shed path itself —
                # send-to-response on an established connection.
                latencies = []
                for _ in range(40):
                    with socket.create_connection(
                        ("127.0.0.1", port), timeout=5
                    ) as sock:
                        started = time.monotonic()
                        sock.sendall(_search_bytes())
                        status, headers, payload = _parse(_drain(sock))
                    latencies.append(time.monotonic() - started)
                    assert status == 503
                    assert payload["error"]["code"] == "overloaded"
                    assert int(headers["retry-after"]) >= 1
                assert _p99(latencies) < 0.010  # fast-fail, not a stall
                # Health and readiness still answer at full saturation.
                status, _, payload = _exchange(
                    port, b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n"
                )
                assert status == 200 and payload["status"] == "ok"
                status, _, payload = _exchange(
                    port, b"GET /readyz HTTP/1.1\r\nHost: t\r\n\r\n"
                )
                # 40 sheds >> threshold: critical tier -> not ready.
                assert status == 503 and payload["ready"] is False
                stats = server.admission_stats()
                assert stats["sheds"] == 40
                assert stats["health_inline"] >= 2
                hold._release.set()  # end the burst early
            # Victim A: deadline (500ms) expired during the ~1s hold —
            # it must resolve as 504, not hang or report success late.
            status, _, payload = _parse(_drain(sock_a))
            assert status == 504
            assert payload["error"]["code"] == "deadline_exceeded"
            sock_a.close()
            # Survivor B was admitted (never shed) and had no deadline:
            # it completes successfully once the choke point frees.
            status, _, payload = _parse(_drain(sock_b))
            assert status == 200
            assert payload["candidates"]
            sock_b.close()
            assert service.degradation.snapshot()["shed_total"] == 40

    def test_burst_at_4x_recovers_cleanly(self, service):
        """A real 4x-concurrency burst: accepted requests stay fast,
        nothing outlives its deadline, and the service returns to
        normal tier + clean serving once the burst ends."""
        # Slow the shared probe path so the burst actually saturates a
        # 2-worker pool (toy probes are otherwise microseconds).
        original = service._probe_block_locked  # noqa: SLF001

        def slow_probe(*args, **kwargs):
            time.sleep(0.03)
            return original(*args, **kwargs)

        service._probe_block_locked = slow_probe  # noqa: SLF001
        deadline_ms = 3000
        with make_server(
            service, "127.0.0.1", 0, workers=2, admission_queue_depth=2
        ) as server:
            port = server.server_address[1]

            def one_request() -> tuple[int, float]:
                started = time.monotonic()
                try:
                    status, _, _ = _exchange(
                        port,
                        _search_bytes(
                            headers={"X-Deadline-Ms": str(deadline_ms)}
                        ),
                        timeout=8.0,
                    )
                except (AssertionError, OSError):
                    status = 0
                return status, time.monotonic() - started

            # Unsaturated baseline: one sequential client, same
            # connection-per-request shape as the burst clients.
            baseline = [one_request() for _ in range(20)]
            assert all(status == 200 for status, _ in baseline)
            unsat_p99 = _p99([latency for _, latency in baseline])

            # 4x burst: 8 concurrent clients against capacity ~2+2.
            def client() -> list[tuple[int, float]]:
                return [one_request() for _ in range(8)]

            with ThreadPoolExecutor(max_workers=8) as pool:
                results = [
                    outcome
                    for future in [pool.submit(client) for _ in range(8)]
                    for outcome in future.result()
                ]
            statuses = [status for status, _ in results]
            accepted = [lat for status, lat in results if status == 200]
            shed = [lat for status, lat in results if status == 503]
            assert set(statuses) <= {200, 503, 504}
            assert accepted, "burst starved every request"
            assert shed, "4x burst never tripped admission control"
            # Nothing — accepted, shed, or expired — outlived its
            # deadline budget (plus I/O grace): zero hung requests.
            assert max(lat for _, lat in results) < deadline_ms / 1e3 + 1.0
            # Shedding kept accepted latency bounded.  The 2x-of-unsat
            # criterion gets a small absolute floor: at toy scale the
            # baseline p99 is a few ms, where scheduler jitter under 8
            # GIL-sharing client threads dominates the comparison.
            assert _p99(accepted) <= max(2 * unsat_p99, 0.25)
            assert _p99(shed) < 0.1  # sheds stayed fast all burst long
            # Full recovery: tier drains to normal, then clean serving.
            recover_by = time.monotonic() + 10.0
            while time.monotonic() < recover_by:
                if service.degradation.tier() == 0:
                    break
                time.sleep(0.1)
            assert service.degradation.tier() == 0
            after = [one_request() for _ in range(5)]
            assert all(status == 200 for status, _ in after)
            status, payload = _request(port, "GET", "/readyz")
            assert status == 200 and payload["ready"] is True
            stats = server.admission_stats()
            assert stats["queued_now"] == 0
            assert stats["sheds"] >= len(shed)
