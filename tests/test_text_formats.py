"""Tests for repro.text.formats."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.text.formats import format_histogram, infer_format


class TestInferFormat:
    def test_code_pattern(self):
        assert infer_format("AB-1234").signature == "U+-d+"

    def test_date_pattern(self):
        assert infer_format("2021-03-05").signature == "d+-d+-d+"

    def test_lower_word(self):
        assert infer_format("hello").signature == "l+"

    def test_mixed_case_word(self):
        assert infer_format("Hello").signature == "Ul+"

    def test_spaces_compressed(self):
        assert infer_format("a  b").signature == "ls+l"

    def test_punctuation_verbatim(self):
        assert "/" in infer_format("03/05/2021").signature
        assert "-" not in infer_format("03/05/2021").signature

    def test_none_is_empty(self):
        pattern = infer_format(None)
        assert pattern.signature == ""
        assert pattern.raw_length == 0

    def test_numbers_stringified(self):
        assert infer_format(12345).signature == "d+"

    def test_raw_length_recorded(self):
        assert infer_format("abc").raw_length == 3

    def test_same_shape_same_signature(self):
        assert infer_format("XY-9999").signature == infer_format("AB-1234").signature

    @given(st.text(max_size=40))
    def test_deterministic(self, text):
        assert infer_format(text) == infer_format(text)

    @given(st.text(min_size=1, max_size=40))
    def test_signature_never_longer_than_input_classes(self, text):
        # Run-length compression never expands beyond 2x char count ('d+').
        assert len(infer_format(text).signature) <= 2 * len(text)


class TestFormatHistogram:
    def test_counts_shapes(self):
        histogram = format_histogram(["AB-1", "CD-2", "hello"])
        assert histogram["U+-d"] == 2
        assert histogram["l+"] == 1

    def test_skips_nulls_and_empties(self):
        histogram = format_histogram([None, "", "x"])
        assert sum(histogram.values()) == 1

    def test_limit_caps_scan(self):
        histogram = format_histogram(["a"] * 100, limit=10)
        assert sum(histogram.values()) == 10

    def test_empty_input(self):
        assert format_histogram([]) == {}
