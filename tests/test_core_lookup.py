"""Tests for repro.core.lookup: the Add-column-via-lookup flow."""

from __future__ import annotations

import pytest

from repro.core.config import WarpGateConfig
from repro.core.lookup import LookupService
from repro.core.warpgate import WarpGate
from repro.errors import InvalidQueryError
from repro.storage.column import Column
from repro.storage.schema import ColumnRef
from repro.storage.table import Table
from repro.warehouse.catalog import Warehouse
from repro.warehouse.connector import WarehouseConnector


@pytest.fixture()
def service() -> LookupService:
    """Two joinable tables with a case-mismatched join key."""
    warehouse = Warehouse("lookup-test")
    accounts = Table(
        "accounts",
        [
            Column("name", ["Acme Dynamics Corp", "Nova Analytics Llc", "Missing Co"]),
            Column("region", ["east", "west", "north"]),
        ],
    )
    industries = Table(
        "industries",
        [
            Column(
                "company_name",
                ["ACME DYNAMICS CORP", "NOVA ANALYTICS LLC", "OTHER CORP"],
            ),
            Column("sector", ["tech", "finance", "energy"]),
            Column("ticker", ["ACDY", "NOAN", "OTHE"]),
        ],
    )
    warehouse.add_table("crm", accounts)
    warehouse.add_table("stocks", industries)
    system = WarpGate(WarpGateConfig(threshold=0.3))
    system.index_corpus(WarehouseConnector(warehouse))
    return LookupService(system)


QUERY = ColumnRef("crm", "accounts", "name")
CANDIDATE = ColumnRef("stocks", "industries", "company_name")


class TestRecommend:
    def test_candidate_table_metadata_included(self, service):
        recommendations = service.recommend(QUERY, k=3)
        assert recommendations
        top = recommendations[0]
        assert top.candidate == CANDIDATE
        assert "sector" in top.table_columns
        assert top.rank == 1
        assert "industries" in str(top)


class TestAddColumnViaLookup:
    def test_cardinality_preserved(self, service):
        result = service.add_column_via_lookup(QUERY, CANDIDATE, ["sector"])
        assert result.row_count == 3  # exactly the query table's rows

    def test_values_joined_case_insensitively(self, service):
        result = service.add_column_via_lookup(QUERY, CANDIDATE, ["sector"])
        assert result.column("sector").values == ("tech", "finance", None)

    def test_multiple_value_columns(self, service):
        result = service.add_column_via_lookup(QUERY, CANDIDATE, ["sector", "ticker"])
        assert result.column("ticker").values == ("ACDY", "NOAN", None)

    def test_name_collision_suffixed(self, service):
        # Requesting the same source column twice suffixes the second copy.
        result = service.add_column_via_lookup(QUERY, CANDIDATE, ["sector", "sector"])
        assert "sector" in result.column_names
        assert "sector_2" in result.column_names

    def test_unknown_value_column_rejected(self, service):
        with pytest.raises(InvalidQueryError):
            service.add_column_via_lookup(QUERY, CANDIDATE, ["nope"])

    def test_unknown_query_column_rejected(self, service):
        bad_query = ColumnRef("crm", "accounts", "nope")
        with pytest.raises(InvalidQueryError):
            service.add_column_via_lookup(bad_query, CANDIDATE, ["sector"])

    def test_original_table_unchanged(self, service):
        warehouse = service.warpgate.connector.warehouse
        before = warehouse.resolve(QUERY).column_names
        service.add_column_via_lookup(QUERY, CANDIDATE, ["sector"])
        assert warehouse.resolve(QUERY).column_names == before


class TestMatchRate:
    def test_partial_match(self, service):
        assert service.match_rate(QUERY, CANDIDATE) == pytest.approx(2 / 3)

    def test_self_match_is_one(self, service):
        assert service.match_rate(QUERY, QUERY) == 1.0
