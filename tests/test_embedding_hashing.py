"""Tests for repro.embedding.hashing."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.embedding.hashing import HashingEmbeddingModel, hashed_token_vector

tokens = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Nd")), min_size=1, max_size=15
)


class TestHashedTokenVector:
    def test_deterministic(self):
        assert np.allclose(hashed_token_vector("acme"), hashed_token_vector("acme"))

    def test_unit_norm(self):
        assert np.linalg.norm(hashed_token_vector("acme")) == pytest.approx(1.0)

    def test_empty_token_zero(self):
        assert not np.any(hashed_token_vector(""))

    def test_different_tokens_differ(self):
        a = hashed_token_vector("acme")
        b = hashed_token_vector("zenith")
        assert float(a @ b) < 0.9

    def test_morphological_similarity(self):
        """Tokens sharing most n-grams land closer than unrelated tokens."""
        near = float(hashed_token_vector("cust_001") @ hashed_token_vector("cust_002"))
        far = float(hashed_token_vector("cust_001") @ hashed_token_vector("zebra"))
        assert near > far
        assert near > 0.5

    def test_dim_respected(self):
        assert hashed_token_vector("x", 32).shape == (32,)

    def test_salt_changes_vector(self):
        a = hashed_token_vector("x", salt="one")
        b = hashed_token_vector("x", salt="two")
        assert not np.allclose(a, b)

    def test_returned_vector_readonly(self):
        vector = hashed_token_vector("acme")
        with pytest.raises(ValueError):
            vector[0] = 1.0

    @settings(max_examples=30)
    @given(tokens)
    def test_always_unit_or_zero(self, token):
        norm = np.linalg.norm(hashed_token_vector(token))
        assert norm == pytest.approx(1.0) or norm == 0.0


class TestHashingEmbeddingModel:
    def test_is_trained_always(self):
        assert HashingEmbeddingModel().is_trained

    def test_embed_tokens_shape(self):
        model = HashingEmbeddingModel(dim=16)
        matrix = model.embed_tokens(["a", "b", "c"])
        assert matrix.shape == (3, 16)

    def test_embed_tokens_empty(self):
        assert HashingEmbeddingModel(dim=16).embed_tokens([]).shape == (0, 16)

    def test_idf_uniform(self):
        assert HashingEmbeddingModel().idf("anything") == 1.0

    def test_invalid_dim(self):
        with pytest.raises(ValueError):
            HashingEmbeddingModel(dim=0)

    def test_embed_token_matches_function(self):
        model = HashingEmbeddingModel(dim=64)
        assert np.allclose(model.embed_token("x"), hashed_token_vector("x", 64))
