"""Tests for repro.index.minhash."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import EmptyIndexError
from repro.index.minhash import MinHashIndex, MinHashSignature
from repro.text.similarity import jaccard

value_sets = st.frozensets(st.text(min_size=1, max_size=8), min_size=1, max_size=40)


class TestSignature:
    def test_identical_sets_estimate_one(self):
        a = MinHashSignature.of(["x", "y", "z"])
        b = MinHashSignature.of(["x", "y", "z"])
        assert a.jaccard_estimate(b) == 1.0

    def test_disjoint_sets_estimate_near_zero(self):
        a = MinHashSignature.of([f"a{i}" for i in range(50)])
        b = MinHashSignature.of([f"b{i}" for i in range(50)])
        assert a.jaccard_estimate(b) < 0.1

    def test_empty_signatures_similar(self):
        a = MinHashSignature()
        b = MinHashSignature()
        assert a.is_empty
        assert a.jaccard_estimate(b) == 1.0

    def test_none_values_skipped(self):
        a = MinHashSignature.of(["x", None])
        b = MinHashSignature.of(["x"])
        assert a.jaccard_estimate(b) == 1.0

    def test_update_is_union(self):
        incremental = MinHashSignature()
        incremental.update(["a", "b"])
        incremental.update(["c"])
        oneshot = MinHashSignature.of(["a", "b", "c"])
        assert incremental.jaccard_estimate(oneshot) == 1.0

    def test_duplicates_harmless(self):
        a = MinHashSignature.of(["x"] * 100 + ["y"])
        b = MinHashSignature.of(["x", "y"])
        assert a.jaccard_estimate(b) == 1.0

    def test_different_families_rejected(self):
        a = MinHashSignature.of(["x"], seed_key="one")
        b = MinHashSignature.of(["x"], seed_key="two")
        with pytest.raises(ValueError):
            a.jaccard_estimate(b)

    def test_different_sizes_rejected(self):
        a = MinHashSignature.of(["x"], n_perm=64)
        b = MinHashSignature.of(["x"], n_perm=128)
        with pytest.raises(ValueError):
            a.jaccard_estimate(b)

    def test_invalid_n_perm(self):
        with pytest.raises(ValueError):
            MinHashSignature(n_perm=0)

    def test_band_keys_split(self):
        signature = MinHashSignature.of(["x"], n_perm=64)
        keys = signature.band_keys(8)
        assert len(keys) == 8
        assert len(set(keys)) >= 1

    def test_band_keys_divisibility(self):
        with pytest.raises(ValueError):
            MinHashSignature.of(["x"], n_perm=64).band_keys(7)

    @settings(max_examples=25, deadline=None)
    @given(value_sets, value_sets)
    def test_estimate_tracks_true_jaccard(self, left, right):
        """With 256 permutations the estimate is within ~0.2 of truth."""
        a = MinHashSignature.of(left, n_perm=256)
        b = MinHashSignature.of(right, n_perm=256)
        truth = jaccard(left, right)
        assert abs(a.jaccard_estimate(b) - truth) < 0.2


class TestIndex:
    def test_add_and_query(self):
        index = MinHashIndex(threshold=0.5)
        index.add("a", MinHashSignature.of(["x", "y", "z"]))
        results = index.query(MinHashSignature.of(["x", "y", "z"]))
        assert results[0][0] == "a"

    def test_empty_query_raises(self):
        with pytest.raises(EmptyIndexError):
            MinHashIndex().query(MinHashSignature.of(["x"]))

    def test_threshold_filters(self):
        index = MinHashIndex(threshold=0.9)
        index.add("a", MinHashSignature.of([f"v{i}" for i in range(20)]))
        probe = MinHashSignature.of([f"v{i}" for i in range(10)])  # j = 0.5
        assert index.query(probe) == []

    def test_exclude(self):
        index = MinHashIndex(threshold=0.5)
        signature = MinHashSignature.of(["x"])
        index.add("self", signature)
        assert index.query(signature, exclude="self") == []

    def test_k_truncates(self):
        index = MinHashIndex(threshold=0.0)
        for name in ("a", "b", "c"):
            index.add(name, MinHashSignature.of(["shared", name]))
        probe = MinHashSignature.of(["shared"])
        assert len(index.query(probe, 2)) <= 2

    def test_results_ranked(self):
        index = MinHashIndex(threshold=0.0)
        base = [f"v{i}" for i in range(20)]
        index.add("close", MinHashSignature.of(base[:18] + ["q1", "q2"]))
        index.add("far", MinHashSignature.of(base[:5] + [f"w{i}" for i in range(15)]))
        probe = MinHashSignature.of(base)
        results = index.query(probe)
        keys = [key for key, _ in results]
        if "close" in keys and "far" in keys:
            assert keys.index("close") < keys.index("far")

    def test_family_mismatch_rejected(self):
        index = MinHashIndex()
        with pytest.raises(ValueError):
            index.add("a", MinHashSignature.of(["x"], seed_key="other"))

    def test_signature_of(self):
        index = MinHashIndex()
        signature = MinHashSignature.of(["x"])
        index.add("a", signature)
        assert index.signature_of("a") is signature

    def test_bad_banding_rejected(self):
        with pytest.raises(ValueError):
            MinHashIndex(n_perm=100, n_bands=32)

    def test_bad_threshold_rejected(self):
        with pytest.raises(ValueError):
            MinHashIndex(threshold=1.5)

    def test_candidate_rate_monotone(self):
        index = MinHashIndex()
        rates = [index.expected_candidate_rate(s) for s in (0.1, 0.5, 0.9)]
        assert rates == sorted(rates)
