"""Tests for repro.eval.quality: the join-quality scenario suite.

One real ``small``-profile run is shared module-wide (the matrix is
deterministic — generated corpora, seeded encoders), so the contract
checks and the recall regression pins all read the same rows.

The regression class is the tier-1 guard the quality work hangs off: a
scoring change that costs recall on the containment workload fails here,
not in a nightly dashboard.
"""

from __future__ import annotations

import pytest

from repro.eval.quality import (
    QUALITY_KS,
    QUALITY_PROFILES,
    WARPGATE_ARMS,
    quality_headline,
    run_quality_suite,
)


@pytest.fixture(scope="module")
def small_suite():
    return run_quality_suite(profile="small")


@pytest.fixture(scope="module")
def small_rows(small_suite):
    return {(row["system"], row["arm"]): row for row in small_suite["rows"]}


class TestSuiteContract:
    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError):
            run_quality_suite(profile="enormous")

    def test_unknown_dataset_rejected(self):
        with pytest.raises(ValueError):
            run_quality_suite(profile="small", datasets=("nope",))

    def test_profiles_cover_the_headline_systems(self):
        # Every profile must produce all four numbers the CI recall gate
        # and the history headline read.
        for spec in QUALITY_PROFILES.values():
            assert {"webtable", "hybrid"} <= set(spec["arms"])
        assert set(QUALITY_PROFILES["full"]["arms"]) == set(WARPGATE_ARMS)

    def test_one_row_per_cell(self, small_suite, small_rows):
        arms = QUALITY_PROFILES["small"]["arms"]
        expected = {("warpgate", arm) for arm in arms}
        expected |= {("aurum", "default"), ("d3l", "default")}
        assert set(small_rows) == expected
        assert len(small_suite["rows"]) == len(expected)

    def test_rows_carry_the_full_metric_set(self, small_suite):
        for row in small_suite["rows"]:
            assert row["dataset_key"] == "nextiajd"
            assert row["n_queries"] > 0
            for k in QUALITY_KS:
                assert 0.0 <= row[f"p_at_{k}"] <= 1.0
                assert 0.0 <= row[f"r_at_{k}"] <= 1.0
            assert 0.0 <= row["map"] <= 1.0
            assert 0.0 <= row["mrr"] <= 1.0
            assert row["index_s"] >= 0.0
            assert row["eval_s"] >= 0.0

    def test_recall_monotone_in_k(self, small_suite):
        for row in small_suite["rows"]:
            recalls = [row[f"r_at_{k}"] for k in QUALITY_KS]
            assert recalls == sorted(recalls), (row["system"], row["arm"])


class TestRecallRegression:
    """Floors under the committed small-profile matrix (measured with
    margin: webtable R@10 = 0.875, hybrid = 1.0, aurum = 0.458,
    d3l = 0.917 at the time of pinning)."""

    def test_warpgate_cosine_recall_floor(self, small_rows):
        assert small_rows[("warpgate", "webtable")]["r_at_10"] >= 0.8

    def test_hybrid_recall_floor(self, small_rows):
        assert small_rows[("warpgate", "hybrid")]["r_at_10"] >= 0.95

    def test_hybrid_beats_cosine_recall(self, small_rows):
        hybrid = small_rows[("warpgate", "hybrid")]
        cosine = small_rows[("warpgate", "webtable")]
        assert hybrid["r_at_10"] > cosine["r_at_10"]

    def test_hybrid_does_not_pay_in_precision(self, small_rows):
        hybrid = small_rows[("warpgate", "hybrid")]
        cosine = small_rows[("warpgate", "webtable")]
        assert hybrid["p_at_10"] >= cosine["p_at_10"]

    def test_warpgate_beats_aurum(self, small_rows):
        # The CI quality-smoke gate, held as a test too: embeddings beat
        # thresholded MinHash on the containment workload.
        warpgate = small_rows[("warpgate", "webtable")]
        assert warpgate["r_at_10"] >= small_rows[("aurum", "default")]["r_at_10"]

    def test_hybrid_map_floor(self, small_rows):
        assert small_rows[("warpgate", "hybrid")]["map"] >= 0.9


class TestHeadline:
    def test_extracted_from_rows(self, small_suite, small_rows):
        headline = small_suite["headline"]
        assert headline == quality_headline(small_suite["rows"])
        assert (
            headline["quality_hybrid_recall_at_10"]
            == small_rows[("warpgate", "hybrid")]["r_at_10"]
        )
        assert (
            headline["quality_warpgate_recall_at_10"]
            == small_rows[("warpgate", "webtable")]["r_at_10"]
        )
        assert (
            headline["quality_aurum_recall_at_10"]
            == small_rows[("aurum", "default")]["r_at_10"]
        )
        assert (
            headline["quality_hybrid_map"]
            == small_rows[("warpgate", "hybrid")]["map"]
        )

    def test_missing_cells_yield_none(self):
        headline = quality_headline([])
        assert set(headline) == {
            "quality_warpgate_recall_at_10",
            "quality_hybrid_recall_at_10",
            "quality_aurum_recall_at_10",
            "quality_d3l_recall_at_10",
            "quality_hybrid_map",
        }
        assert all(value is None for value in headline.values())

    def test_ignores_other_datasets(self):
        rows = [
            {
                "dataset_key": "spider",
                "system": "warpgate",
                "arm": "hybrid",
                "r_at_10": 0.5,
                "map": 0.5,
            }
        ]
        assert quality_headline(rows)["quality_hybrid_recall_at_10"] is None
