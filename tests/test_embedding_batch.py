"""Batched embedding pipeline: batch-vs-sequential equivalence properties.

Every registry model must satisfy the batch contract: `embed_tokens_batch`
is element-wise equivalent to sequential `embed_tokens`, and
`ColumnEncoder.encode_batch` is element-wise equivalent to sequential
`encode` — across aggregations, value dedup, column-name inclusion, and
numeric-profile blending.  Plus: the streaming chunked `index_corpus`
matches one-shot indexing, and the shared caches stay bounded.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import WarpGateConfig
from repro.core.warpgate import WarpGate
from repro.embedding.base import LRUCache
from repro.embedding.encoder import ColumnEncoder
from repro.embedding.hashing import (
    HashingEmbeddingModel,
    hashed_token_matrix,
    hashed_token_vector,
)
from repro.embedding.registry import available_models, get_model
from repro.storage.column import Column
from repro.storage.types import DataType
from repro.warehouse.connector import WarehouseConnector

ATOL = 1e-6

TOKEN_LISTS = [
    ["acme", "corp"],
    [],
    ["corp", "zq_9942", "acme", "corp"],  # repeats + OOV-ish token
    ["cust_001", "cust_002"],
    ["acme"],
]

COLUMNS = [
    Column("company", ["Acme Corp", "Globex", "Acme Corp", "Initech LLC"]),
    Column("quantity", [3, 1, 4, 1, 5, 9, 2, 6]),
    Column("empty", [None, None], DataType.STRING),
    Column("mixed_case", ["ALPHA beta", "alpha BETA"]),
    Column("floats", [0.5, 2.25, -7.5]),
]


class TestValueTypeCollisions:
    """7, 7.0, and True hash alike but tokenize differently — the value
    caches must keep them apart, within a column and across columns."""

    def test_int_then_float_column(self):
        encoder = ColumnEncoder(HashingEmbeddingModel(dim=32))
        int_column = Column("a", [7, 7, 7])
        float_column = Column("b", [7.0, 7.0, 7.0])
        encoder.encode_batch([int_column])  # populate the caches with int 7
        matrix, _stats = encoder.encode_batch([float_column])
        assert np.allclose(matrix[0], encoder.encode(float_column), atol=ATOL)

    def test_mixed_types_in_one_column(self):
        encoder = ColumnEncoder(HashingEmbeddingModel(dim=32))
        mixed = Column("m", [7, 7.0, True, 1])
        matrix, _stats = encoder.encode_batch([mixed])
        assert np.allclose(matrix[0], encoder.encode(mixed), atol=ATOL)

    def test_dedupe_keeps_types_apart(self):
        encoder = ColumnEncoder(HashingEmbeddingModel(dim=32), dedupe_values=True)
        mixed = Column("m", [7, 7.0, 7, 7.0])
        matrix, _stats = encoder.encode_batch([mixed])
        assert np.allclose(matrix[0], encoder.encode(mixed), atol=ATOL)


@pytest.fixture(scope="session", params=available_models())
def registry_model(request):
    """Each registry model once per session (pretrained arms are cached)."""
    return get_model(request.param)


class TestModelBatchContract:
    def test_embed_tokens_batch_matches_sequential(self, registry_model):
        batch = registry_model.embed_tokens_batch(TOKEN_LISTS)
        assert len(batch) == len(TOKEN_LISTS)
        for matrix, tokens in zip(batch, TOKEN_LISTS):
            expected = registry_model.embed_tokens(list(tokens))
            assert matrix.shape == expected.shape
            assert np.allclose(matrix, expected, atol=ATOL)

    def test_embed_tokens_batch_repeated_calls_stable(self, registry_model):
        first = registry_model.embed_tokens_batch(TOKEN_LISTS)
        second = registry_model.embed_tokens_batch(TOKEN_LISTS)
        for left, right in zip(first, second):
            assert np.allclose(left, right, atol=ATOL)

    def test_idf_batch_matches_sequential(self, registry_model):
        tokens = ["acme", "corp", "zq_9942"]
        batch = registry_model.idf_batch(tokens)
        expected = [registry_model.idf(token) for token in tokens]
        assert np.allclose(batch, expected)

    def test_contextual_distinct_embed_never_touches_shared_cache(self):
        # bertlike shares the webtable singleton's token cache for its
        # input fetch; embed_tokens_distinct on the contextual wrapper
        # must neither serve base rows as outputs nor write contextualized
        # rows into the base model's cache.
        bertlike = get_model("bertlike")
        base = bertlike.base_model
        token = "poison_check_token"
        contextual_row = bertlike.embed_tokens_distinct([token])[0]
        assert np.allclose(
            contextual_row, bertlike.embed_tokens([token])[0], atol=ATOL
        )
        assert np.allclose(
            base.embed_tokens_distinct([token])[0],
            base.embed_token(token),
            atol=ATOL,
        )


class TestEncodeBatchEquivalence:
    @pytest.mark.parametrize("aggregation", ["mean", "tfidf"])
    @pytest.mark.parametrize("dedupe_values", [False, True])
    def test_matches_sequential_encode(
        self, registry_model, aggregation, dedupe_values
    ):
        encoder = ColumnEncoder(
            registry_model,
            aggregation=aggregation,
            dedupe_values=dedupe_values,
            numeric_profile_weight=0.3,
        )
        matrix, stats = encoder.encode_batch(COLUMNS)
        assert matrix.shape == (len(COLUMNS), encoder.dim)
        assert stats.columns == len(COLUMNS)
        for position, column in enumerate(COLUMNS):
            expected = encoder.encode(column)
            assert np.allclose(matrix[position], expected, atol=ATOL), column.name

    def test_include_column_name_matches(self, registry_model):
        encoder = ColumnEncoder(registry_model, include_column_name=True)
        matrix, _stats = encoder.encode_batch(COLUMNS)
        for position, column in enumerate(COLUMNS):
            assert np.allclose(
                matrix[position], encoder.encode(column), atol=ATOL
            ), column.name

    def test_truncation_fallback_matches(self, registry_model):
        encoder = ColumnEncoder(registry_model, max_tokens=5)
        long_column = Column("log", [f"alpha beta gamma {i}" for i in range(10)])
        matrix, _stats = encoder.encode_batch([long_column, COLUMNS[0]])
        assert np.allclose(matrix[0], encoder.encode(long_column), atol=ATOL)
        assert np.allclose(matrix[1], encoder.encode(COLUMNS[0]), atol=ATOL)

    def test_encode_many_routes_through_batch(self):
        encoder = ColumnEncoder(HashingEmbeddingModel(dim=32))
        matrix = encoder.encode_many(COLUMNS)
        batch, _stats = encoder.encode_batch(COLUMNS)
        assert np.allclose(matrix, batch)


class TestSerializeBatch:
    def test_folded_stream_aggregates_like_reference(self):
        encoder = ColumnEncoder(HashingEmbeddingModel(dim=32))
        for item, column in zip(encoder.serialize_batch(COLUMNS), COLUMNS):
            tokens, weights = item.flatten()
            ref_tokens, ref_weights = encoder.serialize(column)
            # Same multiset of (token, total weight): folding only merges
            # duplicate values into one weighted slot.
            folded: dict[str, float] = {}
            for token, weight in zip(tokens, weights):
                folded[token] = folded.get(token, 0.0) + weight
            reference: dict[str, float] = {}
            for token, weight in zip(ref_tokens, ref_weights):
                reference[token] = reference.get(token, 0.0) + weight
            assert folded == reference

    def test_occurrences_counts_unfolded_stream(self):
        encoder = ColumnEncoder(HashingEmbeddingModel(dim=32))
        column = Column("x", ["a b", "a b", "c"])
        item = encoder.serialize_batch([column])[0]
        assert item.occurrences == 5  # 2x "a b" (2 tokens) + "c"
        assert len(item.flatten()[0]) == 3  # folded: a, b, c

    def test_truncating_column_uses_exact_fallback(self):
        encoder = ColumnEncoder(HashingEmbeddingModel(dim=32), max_tokens=4)
        column = Column("x", ["alpha beta"] * 10)
        item = encoder.serialize_batch([column])[0]
        assert item.exact is not None
        assert item.flatten() == encoder.serialize(column)


class TestHashedTokenMatrix:
    def test_matches_single_token_kernel(self):
        tokens = ["acme", "", "aaaa", "cust_001", "acme"]
        matrix = hashed_token_matrix(tokens, 48)
        for position, token in enumerate(tokens):
            assert np.allclose(
                matrix[position], hashed_token_vector(token, 48), atol=1e-12
            )

    def test_empty_input(self):
        assert hashed_token_matrix([], 16).shape == (0, 16)


class TestCaches:
    def test_lru_bound_and_stats(self):
        cache = LRUCache(capacity=3)
        for key in "abcd":
            cache.put(key, key.upper())
        assert len(cache) == 3
        assert "a" not in cache  # least-recently-used evicted
        assert cache.get("b") == "B"
        stats = cache.stats()
        assert stats["size"] == 3
        assert stats["capacity"] == 3

    def test_lru_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            LRUCache(capacity=0)

    def test_repeated_encode_batch_hits_cache(self):
        encoder = ColumnEncoder(HashingEmbeddingModel(dim=32))
        _first, first_stats = encoder.encode_batch(COLUMNS)
        second, second_stats = encoder.encode_batch(COLUMNS)
        assert second_stats.cache_hits > 0
        assert second_stats.cache_misses == 0
        for position, column in enumerate(COLUMNS):
            assert np.allclose(second[position], encoder.encode(column), atol=ATOL)

    def test_values_shared_across_columns_cost_one_embed(self):
        model = HashingEmbeddingModel(dim=32)
        encoder = ColumnEncoder(model)
        shared = [f"value {i}" for i in range(20)]
        columns = [Column(f"c{i}", shared) for i in range(8)]
        _matrix, stats = encoder.encode_batch(columns)
        # 8 columns x 20 values, but only 20 distinct values embed.
        assert stats.cache_hits >= 7 * 20
        assert stats.cache_hit_rate > 0.5

    def test_overflowing_chunk_still_correct(self):
        # More distinct values than the LRU can hold: results must not
        # depend on cache residency.
        encoder = ColumnEncoder(HashingEmbeddingModel(dim=16), cache_size=8)
        columns = [
            Column(f"c{i}", [f"tok{i}_{j}" for j in range(12)]) for i in range(6)
        ]
        matrix, _stats = encoder.encode_batch(columns)
        for position, column in enumerate(columns):
            assert np.allclose(matrix[position], encoder.encode(column), atol=ATOL)
        assert len(encoder._value_vectors) <= 8

    def test_cache_stats_shape(self):
        encoder = ColumnEncoder(HashingEmbeddingModel(dim=16))
        encoder.encode_batch(COLUMNS[:2])
        payload = encoder.cache_stats()
        assert set(payload) == {"value_tokens", "value_vectors", "token_cache"}
        for section in payload.values():
            assert {"size", "hits", "misses", "hit_rate"} <= set(section)


class TestStreamingIndexCorpus:
    def test_chunked_matches_one_shot(self, toy_warehouse):
        one_shot = WarpGate(WarpGateConfig(threshold=0.3))
        one_shot.index_corpus(WarehouseConnector(toy_warehouse))
        streamed = WarpGate(WarpGateConfig(threshold=0.3, index_chunk_size=3))
        report = streamed.index_corpus(WarehouseConnector(toy_warehouse))
        assert report.notes["chunk_size"] == 3
        assert streamed.indexed_refs == one_shot.indexed_refs
        for ref in one_shot.indexed_refs:
            assert np.allclose(
                streamed.vector_of(ref), one_shot.vector_of(ref), atol=ATOL
            )
        query = one_shot.indexed_refs[1]
        assert (
            streamed.search(query, 5).refs == one_shot.search(query, 5).refs
        )

    def test_chunk_size_argument_overrides_config(self, toy_connector):
        system = WarpGate(WarpGateConfig(threshold=0.3))
        report = system.index_corpus(toy_connector, chunk_size=2)
        assert report.notes["chunk_size"] == 2
        assert report.columns_indexed == 8

    def test_bad_chunk_size_rejected(self, toy_connector):
        with pytest.raises(ValueError):
            WarpGate().index_corpus(toy_connector, chunk_size=0)
        with pytest.raises(ValueError):
            WarpGateConfig(index_chunk_size=0)

    def test_report_carries_embed_stats(self, toy_connector):
        report = WarpGate().index_corpus(toy_connector)
        embed = report.notes["embed"]
        assert embed["columns"] == 8
        assert embed["token_occurrences"] >= embed["tokens"] > 0

    def test_reindex_reports_replacements_separately(self, toy_warehouse):
        system = WarpGate(WarpGateConfig(threshold=0.3))
        first = system.index_corpus(WarehouseConnector(toy_warehouse))
        assert first.columns_indexed == 8
        assert first.columns_replaced == 0
        second = system.index_corpus(WarehouseConnector(toy_warehouse))
        assert second.columns_indexed == 0
        assert second.columns_replaced == 8
        assert system.indexed_count == 8
