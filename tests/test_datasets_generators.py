"""Tests for the corpus generators: webcorpus, nextiajd, spider, sigma."""

from __future__ import annotations

import pytest

from repro.datasets.nextiajd import TESTBED_PROFILES, generate_testbed
from repro.datasets.sigma import JOEY_QUERY, generate_sigma_sample_database
from repro.datasets.spider import generate_spider_corpus
from repro.datasets.webcorpus import default_training_corpus, generate_web_tables
from repro.storage.schema import ColumnRef
from repro.storage.types import DataType


class TestWebCorpus:
    def test_default_cached(self):
        assert default_training_corpus() is default_training_corpus()

    def test_shape(self):
        corpus = generate_web_tables(n_tables=20, seed=1)
        assert corpus.table_count == 20
        assert len(corpus.column_sequences) > 20
        assert len(corpus.row_sequences) > 100
        assert corpus.token_count > 1000

    def test_deterministic(self):
        a = generate_web_tables(n_tables=5, seed=3)
        b = generate_web_tables(n_tables=5, seed=3)
        assert a.column_sequences == b.column_sequences

    def test_seed_changes_output(self):
        a = generate_web_tables(n_tables=5, seed=3)
        b = generate_web_tables(n_tables=5, seed=4)
        assert a.column_sequences != b.column_sequences

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            generate_web_tables(n_tables=0)

    def test_sequences_contain_headers(self):
        corpus = generate_web_tables(n_tables=10, seed=1)
        flattened = {token for seq in corpus.column_sequences for token in seq[:2]}
        # Header tokens like 'company', 'city', 'sector' must appear.
        assert flattened & {"company", "city", "sector", "name", "product"}


class TestNextiaJD:
    def test_profiles_exist(self):
        assert set(TESTBED_PROFILES) == {"XS", "S", "M", "L"}

    def test_unknown_key(self):
        with pytest.raises(KeyError):
            generate_testbed("XXL")

    def test_xs_shape(self, testbed_xs):
        profile = TESTBED_PROFILES["XS"]
        assert testbed_xs.table_count == profile.n_tables
        # Column quota per table is exact.
        assert testbed_xs.column_count == pytest.approx(
            profile.n_tables * profile.columns_per_table, abs=profile.n_tables
        )
        assert testbed_xs.query_count > 10
        assert 1.0 < testbed_xs.average_answers < 8.0

    def test_deterministic(self, testbed_xs):
        again = generate_testbed("XS")
        assert [t.name for _, t in again.warehouse.table_refs()] == [
            t.name for _, t in testbed_xs.warehouse.table_refs()
        ]
        assert {q.ref for q in again.queries} == {q.ref for q in testbed_xs.queries}

    def test_rows_scale(self):
        small = generate_testbed("XS", rows_scale=0.05)
        assert small.average_rows < 200

    def test_invalid_rows_scale(self):
        with pytest.raises(ValueError):
            generate_testbed("XS", rows_scale=0)

    def test_max_queries_truncates(self):
        corpus = generate_testbed("XS", max_queries=5)
        assert corpus.query_count == 5

    def test_ground_truth_cross_table_only(self, testbed_xs):
        truth = testbed_xs.ground_truth
        for query in testbed_xs.queries:
            for answer in truth.answers(query.ref):
                assert not answer.same_table(query.ref)

    def test_queries_are_string_columns(self, testbed_xs):
        store = testbed_xs.to_store()
        for query in testbed_xs.queries:
            assert store.column(query.ref).dtype is DataType.STRING


class TestSpider:
    def test_shape(self, spider_corpus):
        assert spider_corpus.table_count > 10
        assert spider_corpus.query_count <= 25
        assert 1.0 <= spider_corpus.average_answers < 2.0

    def test_fk_values_subset_of_pk(self, spider_corpus):
        """Declared FK columns must be value-contained in their PK."""
        store = spider_corpus.to_store()
        checked = 0
        for database_name, table in spider_corpus.warehouse.table_refs():
            for foreign_key in table.foreign_keys:
                fk_values = set(
                    store.column(
                        ColumnRef(database_name, table.name, foreign_key.column)
                    ).distinct_values
                )
                pk_values = set(store.column(foreign_key.target).distinct_values)
                assert fk_values <= pk_values
                checked += 1
        assert checked > 5

    def test_ground_truth_matches_declared_keys(self, spider_corpus):
        truth = spider_corpus.ground_truth
        assert truth.total_answers > 0
        for query in spider_corpus.queries:
            assert truth.answers(query.ref)

    def test_deterministic(self, spider_corpus):
        again = generate_spider_corpus(n_databases=6, max_queries=25)
        assert {q.ref for q in again.queries} == {q.ref for q in spider_corpus.queries}

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            generate_spider_corpus(n_databases=0)
        with pytest.raises(ValueError):
            generate_spider_corpus(rows_scale=-1)

    def test_queries_within_database(self, spider_corpus):
        """Spider join paths never cross databases."""
        truth = spider_corpus.ground_truth
        for query in spider_corpus.queries:
            for answer in truth.answers(query.ref):
                assert answer.database == query.ref.database


class TestSigma:
    def test_no_ground_truth(self, sigma_corpus):
        assert sigma_corpus.ground_truth is None
        assert sigma_corpus.queries == []

    def test_joey_tables_present(self, sigma_corpus):
        warehouse = sigma_corpus.warehouse
        account = warehouse.database("SALESFORCE").table("ACCOUNT")
        assert "Name" in account
        industries = warehouse.database("STOCKS").table("INDUSTRIES")
        assert "Company_Name" in industries
        assert "Industry_Group" in industries
        assert "Ticker" in industries

    def test_joey_query_constant(self, sigma_corpus):
        database, table, column = JOEY_QUERY
        assert column in sigma_corpus.warehouse.database(database).table(table)

    def test_industries_is_uppercase(self, sigma_corpus):
        industries = sigma_corpus.warehouse.database("STOCKS").table("INDUSTRIES")
        values = industries.column("Company_Name").values[:10]
        assert all(value == value.upper() for value in values)

    def test_snapshots_inflate_table_count(self):
        with_snapshots = generate_sigma_sample_database(rows_scale=0.1)
        without = generate_sigma_sample_database(rows_scale=0.1, with_snapshots=False)
        assert with_snapshots.table_count > 2 * without.table_count
        assert with_snapshots.table_count > 60

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            generate_sigma_sample_database(rows_scale=0)

    def test_tickers_consistent_with_companies(self, sigma_corpus):
        """INDUSTRIES.Ticker values come from the global ticker map."""
        from repro.datasets.vocabularies import TICKER_OF_COMPANY

        industries = sigma_corpus.warehouse.database("STOCKS").table("INDUSTRIES")
        tickers = set(industries.column("Ticker").values)
        assert tickers <= set(TICKER_OF_COMPANY.values())
