"""Tests for repro.datasets.base."""

from __future__ import annotations

import pytest

from repro.datasets.base import GroundTruth, JoinQuery, TableCorpus
from repro.errors import MissingGroundTruthError
from repro.storage.column import Column
from repro.storage.schema import ColumnRef
from repro.storage.table import Table
from repro.warehouse.catalog import Warehouse


def ref(name: str) -> ColumnRef:
    return ColumnRef("db", "t", name)


class TestGroundTruth:
    def test_add_and_answers(self):
        truth = GroundTruth()
        truth.add(ref("q"), ref("a"))
        truth.add(ref("q"), ref("b"))
        assert truth.answers(ref("q")) == {ref("a"), ref("b")}

    def test_constructor_mapping(self):
        truth = GroundTruth({ref("q"): [ref("a")]})
        assert truth.is_answer(ref("q"), ref("a"))

    def test_unknown_query_empty(self):
        assert GroundTruth().answers(ref("zzz")) == frozenset()

    def test_contains_and_len(self):
        truth = GroundTruth({ref("q"): [ref("a")]})
        assert ref("q") in truth
        assert len(truth) == 1

    def test_total_and_average(self):
        truth = GroundTruth({ref("q1"): [ref("a"), ref("b")], ref("q2"): [ref("c")]})
        assert truth.total_answers == 3
        assert truth.average_answers == pytest.approx(1.5)

    def test_queries_with_answers(self):
        truth = GroundTruth({ref("q"): [ref("a")]})
        assert list(truth.queries_with_answers()) == [ref("q")]


class TestTableCorpus:
    def _corpus(self, with_truth: bool = True) -> TableCorpus:
        warehouse = Warehouse("w")
        warehouse.add_table(
            "db", Table("t", [Column("a", [1, 2]), Column("b", ["x", "y"])])
        )
        corpus = TableCorpus("demo", warehouse)
        if with_truth:
            truth = GroundTruth({ref("a"): [ref("b")]})
            corpus.ground_truth = truth
            corpus.queries = [JoinQuery(ref("a"))]
        return corpus

    def test_summary_statistics(self):
        corpus = self._corpus()
        assert corpus.table_count == 1
        assert corpus.column_count == 2
        assert corpus.average_rows == 2.0
        assert corpus.query_count == 1
        assert corpus.average_answers == 1.0

    def test_summary_row(self):
        row = self._corpus().summary_row()
        assert row["corpus"] == "demo"
        assert row["tables"] == 1

    def test_summary_row_without_truth(self):
        row = self._corpus(with_truth=False).summary_row()
        assert row["avg_answers"] is None

    def test_require_ground_truth(self):
        with pytest.raises(MissingGroundTruthError):
            self._corpus(with_truth=False).require_ground_truth()

    def test_connector_is_fresh(self):
        corpus = self._corpus()
        first = corpus.connector()
        second = corpus.connector()
        assert first is not second
        assert first.warehouse is corpus.warehouse

    def test_to_store_materializes(self):
        store = self._corpus().to_store()
        assert store.table_count == 1
        assert store.column(ref("a")).values == (1, 2)
