"""Tests for repro.text.tokenize."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.text.tokenize import (
    normalize_identifier,
    normalize_value,
    split_identifier,
    tokenize_value,
    tokenize_values,
)


class TestNormalizeValue:
    def test_none_is_empty(self):
        assert normalize_value(None) == ""

    def test_lowercases(self):
        assert normalize_value("Acme CORP") == "acme corp"

    def test_collapses_whitespace(self):
        assert normalize_value("  a \t b\n c ") == "a b c"

    def test_stringifies_numbers(self):
        assert normalize_value(42) == "42"

    @given(st.text(max_size=80))
    def test_idempotent(self, text):
        once = normalize_value(text)
        assert normalize_value(once) == once


class TestTokenizeValue:
    def test_basic_words(self):
        assert tokenize_value("Acme Corp") == ["acme", "corp"]

    def test_punctuation_dropped(self):
        assert tokenize_value("Acme, Corp. (US)") == ["acme", "corp", "us"]

    def test_apostrophes_kept_in_word(self):
        assert tokenize_value("O'Brien") == ["o'brien"]

    def test_numbers_are_tokens(self):
        assert tokenize_value("order 12345") == ["order", "12345"]

    def test_code_splits_on_dash(self):
        assert tokenize_value("cust-00042") == ["cust", "00042"]

    def test_none_is_empty(self):
        assert tokenize_value(None) == []

    def test_empty_string(self):
        assert tokenize_value("") == []

    def test_only_punctuation(self):
        assert tokenize_value("!!! --- ???") == []

    @given(st.text(max_size=80))
    def test_tokens_are_lowercase(self, text):
        for token in tokenize_value(text):
            assert token == token.lower()

    @given(st.text(max_size=80))
    def test_tokens_never_empty(self, text):
        assert all(token for token in tokenize_value(text))


class TestTokenizeValues:
    def test_flattens(self):
        tokens = list(tokenize_values(["a b", "c", None, "d"]))
        assert tokens == ["a", "b", "c", "d"]


class TestSplitIdentifier:
    def test_snake_case(self):
        assert split_identifier("customer_name") == ["customer", "name"]

    def test_camel_case(self):
        assert split_identifier("customerAccountID") == ["customer", "account", "id"]

    def test_pascal_case(self):
        assert split_identifier("BillingAddress") == ["billing", "address"]

    def test_kebab_and_dots(self):
        assert split_identifier("order-id.v2") == ["order", "id", "v2"]

    def test_digits_split(self):
        assert split_identifier("BILLING_ADDRESS_2") == ["billing", "address", "2"]

    def test_upper_run_followed_by_word(self):
        assert split_identifier("HTTPResponse") == ["http", "response"]

    def test_empty(self):
        assert split_identifier("") == []


class TestNormalizeIdentifier:
    def test_joined_lowercase(self):
        assert normalize_identifier("Company-Name") == "company name"

    def test_stable_for_variants(self):
        assert normalize_identifier("companyName") == normalize_identifier(
            "COMPANY_NAME"
        )
