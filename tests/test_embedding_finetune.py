"""Tests for repro.embedding.finetune (§5.2.3 self-supervised fine-tuning)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.embedding.encoder import ColumnEncoder
from repro.embedding.finetune import ContrastiveFineTuner, FineTunedEncoder
from repro.embedding.hashing import HashingEmbeddingModel
from repro.storage.column import Column


def training_columns() -> list[Column]:
    """Six columns from three value families (codes, words, numbers)."""
    columns = []
    for family in range(3):
        for variant in range(2):
            values = [
                f"fam{family}-{(variant * 37 + i) % 120:04d}" for i in range(200)
            ]
            columns.append(Column(f"col_{family}_{variant}", values))
    return columns


@pytest.fixture()
def encoder() -> ColumnEncoder:
    return ColumnEncoder(HashingEmbeddingModel(dim=32))


class TestValidation:
    def test_bad_positive_target(self, encoder):
        with pytest.raises(ValueError):
            ContrastiveFineTuner(encoder, positive_target=0.0)

    def test_negative_above_positive(self, encoder):
        with pytest.raises(ValueError):
            ContrastiveFineTuner(encoder, positive_target=0.5, negative_target=0.6)

    def test_negative_steps(self, encoder):
        tuner = ContrastiveFineTuner(encoder)
        with pytest.raises(ValueError):
            tuner.fit(training_columns(), steps=-1)

    def test_too_few_columns(self, encoder):
        tuner = ContrastiveFineTuner(encoder)
        with pytest.raises(ValueError):
            tuner.build_pairs([Column("only", ["a"])])

    def test_transform_shape_validated(self, encoder):
        with pytest.raises(ValueError):
            FineTunedEncoder(encoder, np.eye(3))


class TestBuildPairs:
    def test_shapes(self, encoder):
        tuner = ContrastiveFineTuner(encoder, sample_size=50)
        a, b, positives, negatives = tuner.build_pairs(training_columns())
        assert a.shape == (6, 32)
        assert b.shape == (6, 32)
        assert positives.shape == (6, 2)
        assert negatives.shape == (6, 2)

    def test_positive_pairs_are_diagonal(self, encoder):
        tuner = ContrastiveFineTuner(encoder)
        _, _, positives, _ = tuner.build_pairs(training_columns())
        assert all(i == j for i, j in positives)

    def test_negative_pairs_are_off_diagonal(self, encoder):
        tuner = ContrastiveFineTuner(encoder)
        _, _, _, negatives = tuner.build_pairs(training_columns())
        assert all(i != j for i, j in negatives)

    def test_deterministic(self, encoder):
        tuner = ContrastiveFineTuner(encoder)
        a1, b1, _, n1 = tuner.build_pairs(training_columns())
        a2, b2, _, n2 = tuner.build_pairs(training_columns())
        assert np.allclose(a1, a2)
        assert np.allclose(b1, b2)
        assert np.array_equal(n1, n2)


class TestFit:
    def test_zero_steps_is_identity(self, encoder):
        tuner = ContrastiveFineTuner(encoder)
        tuned, report = tuner.fit(training_columns(), steps=0)
        assert np.allclose(tuned.transform, np.eye(32))
        assert report.losses == []
        column = training_columns()[0]
        assert np.allclose(tuned.encode(column), encoder.encode(column))

    def test_training_improves_margin(self, encoder):
        tuner = ContrastiveFineTuner(encoder, sample_size=50)
        _tuned, report = tuner.fit(training_columns(), steps=100)
        assert report.margin_after > report.margin_before

    def test_positive_cosines_stay_high(self, encoder):
        # The margin gain comes mostly from pushing negatives down;
        # positives may dip slightly but must remain near 1.
        tuner = ContrastiveFineTuner(encoder, sample_size=50)
        _tuned, report = tuner.fit(training_columns(), steps=100)
        assert report.positive_cosine_after >= report.positive_cosine_before - 0.05
        assert report.positive_cosine_after > 0.9

    def test_outputs_stay_unit_norm(self, encoder):
        tuner = ContrastiveFineTuner(encoder, sample_size=50)
        tuned, _ = tuner.fit(training_columns(), steps=50)
        vector = tuned.encode(training_columns()[0])
        assert np.linalg.norm(vector) == pytest.approx(1.0)

    def test_loss_trajectory_recorded(self, encoder):
        tuner = ContrastiveFineTuner(encoder)
        _, report = tuner.fit(training_columns(), steps=20)
        assert len(report.losses) == 20
        assert all(loss >= 0.0 for loss in report.losses)

    def test_encode_many(self, encoder):
        tuner = ContrastiveFineTuner(encoder)
        tuned, _ = tuner.fit(training_columns(), steps=5)
        matrix = tuned.encode_many(training_columns()[:3])
        assert matrix.shape == (3, 32)
        assert tuned.encode_many([]).shape == (0, 32)
