"""Tests for repro.core.candidates."""

from __future__ import annotations

import pytest

from repro.core.candidates import DiscoveryResult, JoinCandidate, TimingBreakdown
from repro.storage.schema import ColumnRef


def ref(column: str) -> ColumnRef:
    return ColumnRef("db", "t", column)


class TestJoinCandidate:
    def test_str(self):
        assert "0.750" in str(JoinCandidate(ref("a"), 0.75))


class TestTimingBreakdown:
    def test_response_time_sums_components(self):
        timing = TimingBreakdown(
            load_measured_s=1.0,
            load_simulated_s=2.0,
            embed_s=3.0,
            lookup_s=4.0,
            other_s=0.5,
        )
        assert timing.response_time_s == pytest.approx(10.5)
        assert timing.load_s == pytest.approx(3.0)

    def test_lookup_fraction(self):
        timing = TimingBreakdown(embed_s=3.0, lookup_s=1.0)
        assert timing.lookup_fraction == pytest.approx(0.25)

    def test_lookup_fraction_zero_total(self):
        assert TimingBreakdown().lookup_fraction == 0.0

    def test_add(self):
        total = TimingBreakdown(embed_s=1.0) + TimingBreakdown(embed_s=2.0, lookup_s=1.0)
        assert total.embed_s == pytest.approx(3.0)
        assert total.lookup_s == pytest.approx(1.0)

    def test_scaled(self):
        scaled = TimingBreakdown(embed_s=4.0).scaled(0.25)
        assert scaled.embed_s == pytest.approx(1.0)


class TestDiscoveryResult:
    def _result(self) -> DiscoveryResult:
        return DiscoveryResult(
            query=ref("q"),
            candidates=[
                JoinCandidate(ref("a"), 0.9),
                JoinCandidate(ref("b"), 0.8),
                JoinCandidate(ref("c"), 0.7),
            ],
        )

    def test_len_and_iter(self):
        result = self._result()
        assert len(result) == 3
        assert [c.score for c in result] == [0.9, 0.8, 0.7]

    def test_refs(self):
        assert self._result().refs == [ref("a"), ref("b"), ref("c")]

    def test_top(self):
        assert [c.ref for c in self._result().top(2)] == [ref("a"), ref("b")]

    def test_describe_mentions_all(self):
        text = self._result().describe()
        assert "db.t.q" in text
        assert "db.t.a" in text
        assert "response time" in text
