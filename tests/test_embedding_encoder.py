"""Tests for repro.embedding.encoder."""

from __future__ import annotations

import numpy as np
import pytest

from repro.embedding.encoder import ColumnEncoder
from repro.embedding.hashing import HashingEmbeddingModel
from repro.storage.column import Column
from repro.storage.types import DataType


def encoder(**kwargs) -> ColumnEncoder:
    return ColumnEncoder(HashingEmbeddingModel(dim=32), **kwargs)


class TestValidation:
    def test_unknown_aggregation(self):
        with pytest.raises(ValueError):
            encoder(aggregation="median")

    def test_bad_max_tokens(self):
        with pytest.raises(ValueError):
            encoder(max_tokens=0)

    def test_bad_profile_weight(self):
        with pytest.raises(ValueError):
            encoder(numeric_profile_weight=1.5)

    def test_dim_property(self):
        assert encoder().dim == 32


class TestSerialize:
    def test_tokens_from_values(self):
        tokens, weights = encoder().serialize(Column("x", ["Acme Corp", "Globex"]))
        assert tokens == ["acme", "corp", "globex"]
        assert weights == [1.0, 1.0, 1.0]

    def test_nulls_skipped(self):
        tokens, _ = encoder().serialize(Column("x", ["a", None], DataType.STRING))
        assert tokens == ["a"]

    def test_column_name_included_when_asked(self):
        tokens, _ = encoder(include_column_name=True).serialize(
            Column("company_name", ["acme"])
        )
        assert tokens[:2] == ["company", "name"]

    def test_max_tokens_cap(self):
        column = Column("x", ["word"] * 100)
        tokens, weights = encoder(max_tokens=10).serialize(column)
        assert len(tokens) == 10
        assert len(weights) == 10

    def test_dedupe_weights_by_frequency(self):
        column = Column("x", ["acme", "acme", "acme", "globex"])
        tokens, weights = encoder(dedupe_values=True).serialize(column)
        weight_of = dict(zip(tokens, weights))
        assert weight_of["acme"] == 3.0
        assert weight_of["globex"] == 1.0


class TestEncode:
    def test_unit_norm(self):
        vector = encoder().encode(Column("x", ["acme", "globex"]))
        assert np.linalg.norm(vector) == pytest.approx(1.0)

    def test_all_null_is_zero_vector(self):
        vector = encoder().encode(Column("x", [None, None], DataType.STRING))
        assert not np.any(vector)

    def test_deterministic(self):
        column = Column("x", ["acme", "globex"])
        assert np.allclose(encoder().encode(column), encoder().encode(column))

    def test_same_values_same_vector(self):
        a = encoder().encode(Column("x", ["acme", "globex"]))
        b = encoder().encode(Column("y", ["globex", "acme"]))
        assert float(a @ b) == pytest.approx(1.0)

    def test_dedupe_equals_plain_for_mean(self):
        """Dedupe is a pure optimization under mean aggregation."""
        column = Column("x", ["acme"] * 5 + ["globex"] * 3)
        plain = encoder().encode(column)
        deduped = encoder(dedupe_values=True).encode(column)
        assert float(plain @ deduped) == pytest.approx(1.0, abs=1e-9)

    def test_overlapping_columns_similar(self):
        shared = [f"value{i}" for i in range(30)]
        a = encoder().encode(Column("x", shared + ["extra1"]))
        b = encoder().encode(Column("y", shared + ["other2"]))
        assert float(a @ b) > 0.9

    def test_disjoint_columns_dissimilar(self):
        a = encoder().encode(Column("x", [f"alpha{i}" for i in range(20)]))
        b = encoder().encode(Column("y", [f"beta{i}" for i in range(20)]))
        assert float(a @ b) < 0.7

    def test_tfidf_changes_weighting(self):
        model = HashingEmbeddingModel(dim=32)

        class BiasedIdf(HashingEmbeddingModel):
            def idf(self, token: str) -> float:
                return 0.01 if token == "corp" else 5.0

        column = Column("x", ["acme corp", "globex corp"])
        mean_vec = ColumnEncoder(model).encode(column)
        tfidf_vec = ColumnEncoder(BiasedIdf(dim=32), aggregation="tfidf").encode(column)
        assert not np.allclose(mean_vec, tfidf_vec)

    def test_numeric_profile_blended(self):
        ints = Column("x", list(range(100)))
        with_profile = encoder(numeric_profile_weight=0.5).encode(ints)
        without = encoder(numeric_profile_weight=0.0).encode(ints)
        assert not np.allclose(with_profile, without)

    def test_numeric_profile_ignored_for_strings(self):
        column = Column("x", ["a", "b"])
        with_profile = encoder(numeric_profile_weight=0.5).encode(column)
        without = encoder(numeric_profile_weight=0.0).encode(column)
        assert np.allclose(with_profile, without)

    def test_encode_many(self):
        columns = [Column("a", ["x"]), Column("b", ["y"])]
        matrix = encoder().encode_many(columns)
        assert matrix.shape == (2, 32)

    def test_encode_many_empty(self):
        assert encoder().encode_many([]).shape == (0, 32)

    def test_encode_values_convenience(self):
        vector = encoder().encode_values("anon", ["acme", "globex"])
        assert np.linalg.norm(vector) == pytest.approx(1.0)


class TestSemanticTransfer:
    """With the trained model, same-domain columns align across styles."""

    def test_case_variants_align(self, webtable_model):
        enc = ColumnEncoder(webtable_model)
        lower = enc.encode(Column("x", ["acme dynamics corp", "global logistics inc"]))
        upper = enc.encode(Column("y", ["ACME DYNAMICS CORP", "GLOBAL LOGISTICS INC"]))
        assert float(lower @ upper) == pytest.approx(1.0)

    def test_same_domain_disjoint_values_still_similar(self, webtable_model):
        from repro.datasets.domains import domain

        pool = domain("company").pool
        enc = ColumnEncoder(webtable_model)
        a = enc.encode(Column("x", list(pool[:30])))
        b = enc.encode(Column("y", list(pool[500:530])))
        c = enc.encode(Column("z", [f"log line {i}" for i in range(30)]))
        assert float(a @ b) > float(a @ c)
