"""Integration tests: the paper's claims at test scale.

These run the full pipeline (generate → index → search → evaluate) on the
smallest corpora and assert the *shape* results the benchmarks reproduce at
full scale: system ordering, timing ordering, sampling robustness, the Joey
scenario.
"""

from __future__ import annotations

import pytest

from repro.baselines.aurum import Aurum
from repro.baselines.d3l import D3L
from repro.core.config import WarpGateConfig
from repro.core.lookup import LookupService
from repro.core.warpgate import WarpGate
from repro.datasets.sigma import JOEY_QUERY
from repro.eval.runner import evaluate_system
from repro.storage.schema import ColumnRef


@pytest.fixture(scope="module")
def evaluations(testbed_xs):
    """All three systems evaluated on testbedXS (computed once)."""
    return {
        system.name: evaluate_system(system, testbed_xs, max_queries=20)
        for system in (Aurum(), D3L(), WarpGate())
    }


class TestSystemOrdering:
    def test_warpgate_beats_aurum_on_recall(self, evaluations):
        assert (
            evaluations["warpgate"].recall_at(10)
            > evaluations["aurum"].recall_at(10)
        )

    def test_warpgate_beats_aurum_on_precision(self, evaluations):
        assert (
            evaluations["warpgate"].precision_at(2)
            > evaluations["aurum"].precision_at(2)
        )

    def test_d3l_beats_aurum_on_recall(self, evaluations):
        assert evaluations["d3l"].recall_at(10) > evaluations["aurum"].recall_at(10)

    def test_embedding_system_recall_is_high(self, evaluations):
        assert evaluations["warpgate"].recall_at(10) > 0.6


class TestTimingOrdering:
    def test_aurum_fastest_per_query(self, evaluations):
        aurum = evaluations["aurum"].timing.mean_response_s
        warpgate = evaluations["warpgate"].timing.mean_response_s
        d3l = evaluations["d3l"].timing.mean_response_s
        assert aurum < warpgate
        assert aurum < d3l

    def test_d3l_slower_than_warpgate(self, evaluations):
        assert (
            evaluations["d3l"].timing.mean_response_s
            > evaluations["warpgate"].timing.mean_response_s
        )

    def test_warpgate_lookup_is_minority_share(self, evaluations):
        """Table 2's point: index lookup is not the bottleneck."""
        timing = evaluations["warpgate"].timing
        assert timing.lookup_fraction < 0.5


class TestSamplingRobustness:
    def test_sampled_effectiveness_close_to_full(self, testbed_xs):
        """§4.4: sampling preserves precision/recall within a few points."""
        full = evaluate_system(WarpGate(), testbed_xs, max_queries=20)
        sampled = evaluate_system(
            WarpGate(WarpGateConfig(sample_size=100)), testbed_xs, max_queries=20
        )
        assert abs(full.recall_at(10) - sampled.recall_at(10)) < 0.15
        assert abs(full.precision_at(2) - sampled.precision_at(2)) < 0.15

    def test_sampling_reduces_cost_and_time(self, testbed_xs):
        full = evaluate_system(WarpGate(), testbed_xs, max_queries=10)
        sampled = evaluate_system(
            WarpGate(WarpGateConfig(sample_size=10)), testbed_xs, max_queries=10
        )
        assert (
            sampled.index_report.scanned_bytes < full.index_report.scanned_bytes
        )
        assert (
            sampled.timing.mean_response_s <= full.timing.mean_response_s * 1.5
        )


class TestBertArm:
    def test_bertlike_on_par_but_slower(self, testbed_xs):
        """§4.4: heavier contextual model, same effectiveness, slower."""
        base = evaluate_system(
            WarpGate(WarpGateConfig(sample_size=50)), testbed_xs, max_queries=10
        )
        bert = evaluate_system(
            WarpGate(WarpGateConfig(model_name="bertlike", sample_size=50)),
            testbed_xs,
            max_queries=10,
        )
        assert abs(base.recall_at(10) - bert.recall_at(10)) < 0.25
        assert bert.timing.mean_embed_s > 2.0 * base.timing.mean_embed_s


class TestJoeyScenario:
    def test_cross_database_discovery(self, sigma_corpus):
        system = WarpGate()
        system.index_corpus(sigma_corpus.connector())
        query = ColumnRef(*JOEY_QUERY)
        result = system.search(query, 5)
        refs = result.refs
        assert ColumnRef("STOCKS", "INDUSTRIES", "Company_Name") in refs
        assert ColumnRef("SALESFORCE", "LEAD", "Company") in refs

    def test_lookup_chain(self, sigma_corpus):
        """Name -> INDUSTRIES adds sector info; Ticker chains to PRICES."""
        system = WarpGate()
        system.index_corpus(sigma_corpus.connector())
        service = LookupService(system)
        query = ColumnRef(*JOEY_QUERY)
        industries = ColumnRef("STOCKS", "INDUSTRIES", "Company_Name")
        enriched = service.add_column_via_lookup(
            query, industries, ["Industry_Group", "Ticker"]
        )
        assert "Industry_Group" in enriched.column_names
        assert "Ticker" in enriched.column_names
        # Cross-style (title vs UPPER) join works through normalization.
        added = [v for v in enriched.column("Ticker").values if v is not None]
        assert len(added) > 0.9 * enriched.row_count
        # Follow the chain: Ticker joins PRICES.
        ticker_result = system.search(ColumnRef("STOCKS", "INDUSTRIES", "Ticker"), 5)
        assert ColumnRef("STOCKS", "PRICES", "Ticker") in ticker_result.refs


class TestDeterminism:
    def test_full_pipeline_deterministic(self, testbed_xs):
        first = WarpGate()
        first.index_corpus(testbed_xs.connector())
        second = WarpGate()
        second.index_corpus(testbed_xs.connector())
        query = testbed_xs.queries[0].ref
        assert first.search(query, 10).refs == second.search(query, 10).refs
