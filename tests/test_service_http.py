"""HTTP round-trip tests for the JSON serving layer (stdlib http.client)."""

from __future__ import annotations

import http.client
import json
import socket
import threading
import time

import pytest

from repro.core.config import WarpGateConfig
from repro.service import DiscoveryService, make_server
from repro.warehouse.connector import WarehouseConnector


@pytest.fixture()
def served(toy_warehouse):
    """A DiscoveryService behind a live HTTP server on a free port.

    The server's context manager starts the accept loop on enter and
    joins every worker/accept thread on exit — the tests below verify
    that contract explicitly.
    """
    service = DiscoveryService(WarpGateConfig(threshold=0.3))
    service.open(WarehouseConnector(toy_warehouse))
    with make_server(service, "127.0.0.1", 0, workers=8) as server:
        yield service, server.server_address[1]


def request(port: int, method: str, path: str, body: dict | None = None):
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
    try:
        payload = json.dumps(body) if body is not None else None
        headers = {"Content-Type": "application/json"} if payload else {}
        connection.request(method, path, body=payload, headers=headers)
        response = connection.getresponse()
        return response.status, json.loads(response.read().decode("utf-8"))
    finally:
        connection.close()


class TestHealthAndStats:
    def test_healthz(self, served):
        _, port = served
        status, payload = request(port, "GET", "/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["indexed"] is True
        assert payload["indexed_columns"] == 8

    def test_stats(self, served):
        _, port = served
        status, payload = request(port, "GET", "/stats")
        assert status == 200
        assert payload["backend"] == "lsh"
        assert payload["indexed_columns"] == 8
        assert payload["tables"] == 3
        assert "value_vectors" in payload["caches"]
        assert payload["caches"]["value_vectors"]["size"] > 0

    def test_unknown_route(self, served):
        _, port = served
        status, payload = request(port, "GET", "/nope")
        assert status == 404
        assert payload["error"]["code"] == "not_found"


class TestSearchEndpoint:
    def test_search_roundtrip(self, served):
        _, port = served
        status, payload = request(
            port, "POST", "/search", {"query": "db.customers.company", "k": 3}
        )
        assert status == 200
        assert payload["candidates"][0]["ref"] == "db.vendors.vendor_name"
        assert payload["candidates"][0]["score"] > 0.9

    def test_search_matches_python_api(self, served):
        service, port = served
        _, payload = request(
            port, "POST", "/search", {"query": "db.customers.company", "k": 5}
        )
        local = service.search("db.customers.company", 5)
        assert [c["ref"] for c in payload["candidates"]] == [
            str(ref) for ref in local.refs
        ]

    def test_search_unknown_table_404(self, served):
        _, port = served
        status, payload = request(
            port, "POST", "/search", {"query": "db.ghost.col", "k": 3}
        )
        assert status == 404
        assert payload["error"]["code"] == "not_found"

    def test_search_malformed_body_400(self, served):
        _, port = served
        status, payload = request(port, "POST", "/search", {"k": 3})
        assert status == 400
        assert payload["error"]["code"] == "bad_request"

    def test_bad_content_length_400(self, served):
        _, port = served
        connection = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
        try:
            connection.putrequest("POST", "/search")
            connection.putheader("Content-Length", "abc")
            connection.endheaders()
            response = connection.getresponse()
            payload = json.loads(response.read().decode("utf-8"))
        finally:
            connection.close()
        assert response.status == 400
        assert payload["error"]["code"] == "bad_request"

    def test_oversized_batch_400(self, served):
        _, port = served
        body = {"requests": [{"query": "db.customers.company"}] * 257}
        status, payload = request(port, "POST", "/search/batch", body)
        assert status == 400
        assert payload["error"]["code"] == "bad_request"

    def test_batch_endpoint_parity(self, served):
        _, port = served
        body = {
            "requests": [
                {"query": "db.customers.company", "k": 3},
                {"query": "db.vendors.vendor_name", "k": 3},
            ]
        }
        status, payload = request(port, "POST", "/search/batch", body)
        assert status == 200
        assert len(payload["responses"]) == 2
        single = request(
            port, "POST", "/search", {"query": "db.customers.company", "k": 3}
        )[1]
        batch_candidates = payload["responses"][0]["candidates"]
        assert len(batch_candidates) == len(single["candidates"])
        for got, expected in zip(batch_candidates, single["candidates"]):
            assert got["ref"] == expected["ref"]
            # Batched probes score via one GEMM over the float32 arena;
            # single probes via a gathered matvec — equal to f32 precision.
            assert got["score"] == pytest.approx(expected["score"], abs=1e-6)


class TestIndexMutationEndpoints:
    def test_add_then_search_then_drop(self, served):
        _, port = served
        table_payload = {
            "database": "db",
            "table": {
                "name": "suppliers",
                "columns": [
                    {"name": "supplier_id", "values": [100, 101, 102]},
                    {
                        "name": "supplier_name",
                        "values": [
                            "Acme Dynamics Corp",
                            "Vertex Energy Group",
                            "Nova Analytics Llc",
                        ],
                    },
                ],
            },
        }
        status, stats = request(port, "POST", "/index/add", table_payload)
        assert status == 200
        assert stats["indexed_columns"] == 10
        assert stats["mutations"] == 1

        _, payload = request(
            port, "POST", "/search", {"query": "db.customers.company", "k": 10}
        )
        refs = [c["ref"] for c in payload["candidates"]]
        assert "db.suppliers.supplier_name" in refs

        status, stats = request(
            port, "POST", "/index/drop", {"database": "db", "table": "suppliers"}
        )
        assert status == 200
        assert stats["indexed_columns"] == 8
        _, payload = request(
            port, "POST", "/search", {"query": "db.customers.company", "k": 10}
        )
        refs = [c["ref"] for c in payload["candidates"]]
        assert "db.suppliers.supplier_name" not in refs

    def test_drop_unknown_table_404(self, served):
        _, port = served
        status, payload = request(
            port, "POST", "/index/drop", {"database": "db", "table": "ghost"}
        )
        assert status == 404
        assert payload["error"]["code"] == "not_found"

    def test_refresh_endpoint(self, served):
        _, port = served
        status, stats = request(
            port, "POST", "/index/refresh", {"ref": "db.vendors.vendor_name"}
        )
        assert status == 200
        assert stats["mutations"] == 1

    def test_add_malformed_table_400(self, served):
        _, port = served
        status, payload = request(
            port, "POST", "/index/add", {"database": "db", "table": {"name": ""}}
        )
        assert status == 400
        assert payload["error"]["code"] == "bad_request"


class TestServerLifecycle:
    def make_service(self, toy_warehouse) -> DiscoveryService:
        service = DiscoveryService(WarpGateConfig(threshold=0.3))
        service.open(WarehouseConnector(toy_warehouse))
        return service

    def test_shutdown_joins_every_server_thread(self, toy_warehouse):
        """No worker or accept thread survives the context manager."""
        before = {thread.name for thread in threading.enumerate()}
        service = self.make_service(toy_warehouse)
        with make_server(service, "127.0.0.1", 0, workers=6) as server:
            port = server.server_address[1]
            live = {thread.name for thread in threading.enumerate()} - before
            assert any(name.startswith("http-worker") for name in live)
            assert "http-accept" in live
            status, _payload = request(port, "GET", "/healthz")
            assert status == 200
        leaked = {
            thread.name
            for thread in threading.enumerate()
            if thread.name.startswith(("http-worker", "http-accept"))
        }
        assert leaked == set(), f"server threads leaked: {leaked}"

    def test_shutdown_is_idempotent_and_unserved_is_safe(self, toy_warehouse):
        """shutdown() twice, and on a never-started server, is a no-op."""
        service = self.make_service(toy_warehouse)
        server = make_server(service, "127.0.0.1", 0)
        server.shutdown()  # accept loop never ran
        server.shutdown()
        server.server_close()

    def test_make_server_only_binds(self, toy_warehouse):
        """No worker threads exist until serving actually starts."""
        service = self.make_service(toy_warehouse)
        server = make_server(service, "127.0.0.1", 0, workers=4)
        try:
            assert not any(
                thread.name.startswith("http-worker")
                for thread in threading.enumerate()
            )
            server.start()
            workers = [
                thread
                for thread in threading.enumerate()
                if thread.name.startswith("http-worker")
            ]
            assert len(workers) == 4
        finally:
            server.shutdown()
            server.server_close()

    def test_shutdown_unblocks_idle_keepalive_connection(self, toy_warehouse):
        """A worker parked on an idle persistent connection exits promptly."""
        service = self.make_service(toy_warehouse)
        server = make_server(service, "127.0.0.1", 0, workers=2).start()
        port = server.server_address[1]
        connection = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
        connection.request("GET", "/healthz")
        connection.getresponse().read()
        # The connection now idles, pinning one worker in a blocking read.
        server.shutdown()
        server.server_close()
        connection.close()
        leaked = [
            thread.name
            for thread in threading.enumerate()
            if thread.name.startswith(("http-worker", "http-accept"))
        ]
        assert leaked == []

    def test_overload_handoff_sheds_instead_of_blocking(self, toy_warehouse):
        """A full admission queue fast-fails new connections with 503.

        The accept thread must never block on hand-off (a blocked accept
        loop stalls *every* client, including health probes): past the
        bound it answers 503 + Retry-After inline and closes.
        """
        service = self.make_service(toy_warehouse)
        server = make_server(service, "127.0.0.1", 0, workers=2)
        pairs = [socket.socketpair() for _ in range(5)]
        try:
            assert server._connections.maxsize == 4
            # No workers are running (make_server only binds), so four
            # hand-offs fill the queue...
            for left, _right in pairs[:4]:
                server.process_request(left, ("127.0.0.1", 0))
            assert server._connections.full()
            # ...and a fifth is shed inline — no blocking, 503 on the wire.
            start = time.monotonic()
            server.process_request(pairs[4][0], ("127.0.0.1", 0))
            assert time.monotonic() - start < 2.0
            pairs[4][1].settimeout(5)
            raw = pairs[4][1].recv(65536)
            head, _, body = raw.partition(b"\r\n\r\n")
            assert b"503" in head.split(b"\r\n")[0]
            assert b"Retry-After:" in head
            payload = json.loads(body)
            assert payload["error"]["code"] == "overloaded"
            stats = server.admission_stats()
            assert stats["sheds"] == 1
            assert service.degradation.snapshot()["shed_total"] == 1
            server.shutdown()
        finally:
            server.server_close()
            for left, right in pairs:
                left.close()
                right.close()

    def test_shed_still_answers_health_probes(self, toy_warehouse):
        """/healthz and /readyz are answered inline even while shedding."""
        service = self.make_service(toy_warehouse)
        server = make_server(service, "127.0.0.1", 0, workers=2)
        pairs = [socket.socketpair() for _ in range(6)]
        try:
            for left, _right in pairs[:4]:
                server.process_request(left, ("127.0.0.1", 0))
            assert server._connections.full()
            # A health probe arriving while the queue is full still gets
            # its liveness answer (written inline by the accept path).
            pairs[4][1].sendall(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
            server.process_request(pairs[4][0], ("127.0.0.1", 0))
            pairs[4][1].settimeout(5)
            raw = pairs[4][1].recv(65536)
            assert b"200" in raw.split(b"\r\n")[0]
            assert json.loads(raw.partition(b"\r\n\r\n")[2])["status"] == "ok"
            # Readiness likewise answers inline (not-ready counts as an
            # answer — the probe must never be silently dropped).
            pairs[5][1].sendall(b"GET /readyz HTTP/1.1\r\nHost: x\r\n\r\n")
            server.process_request(pairs[5][0], ("127.0.0.1", 0))
            pairs[5][1].settimeout(5)
            raw = pairs[5][1].recv(65536)
            assert raw.split(b"\r\n")[0].split(b" ")[1] in (b"200", b"503")
            assert server.admission_stats()["health_inline"] == 2
            assert server.admission_stats()["sheds"] == 0
            server.shutdown()
        finally:
            server.server_close()
            for left, right in pairs:
                left.close()
                right.close()

    def test_healthz_is_lock_free(self, served):
        """Liveness answers while a writer holds the exclusive lock."""
        service, port = served
        service._lock.acquire_write()
        try:
            status, payload = request(port, "GET", "/healthz")
        finally:
            service._lock.release_write()
        assert status == 200
        assert payload["status"] == "ok"

    def test_search_routes_through_the_coalescer(self, served):
        """POST /search is served by the coalesced path, visible in /stats."""
        _, port = served
        request(port, "POST", "/search", {"query": "db.customers.company", "k": 3})
        _, stats = request(port, "GET", "/stats")
        coalescer = stats["caches"]["coalescer"]
        assert coalescer["requests"] >= 1
        assert "batch_histogram" in coalescer
        assert stats["caches"]["query_cache"]["size"] >= 1


class TestServeCommand:
    def test_cli_serve_wires_endpoints(self, tmp_path):
        """`python -m repro serve` plumbing: config → service → server."""
        from repro.cli import build_parser

        args = build_parser().parse_args(["serve", str(tmp_path), "--port", "0"])
        assert args.handler.__name__ == "cmd_serve"
        assert args.port == 0
        assert args.host == "127.0.0.1"
