"""Tests for repro.storage.store."""

from __future__ import annotations

import pytest

from repro.errors import ColumnNotFoundError, TableNotFoundError
from repro.storage.column import Column
from repro.storage.schema import ColumnRef
from repro.storage.store import ColumnStore
from repro.storage.table import Table


def make_store() -> ColumnStore:
    store = ColumnStore()
    store.add_table(Table("t1", [Column("a", [1, 2]), Column("b", ["x", "y"])]), database="db")
    store.add_table(Table("t2", [Column("c", [1.5])]), database="db")
    store.add_table(Table("flat", [Column("d", [True])]))
    return store


class TestRegistry:
    def test_counts(self):
        store = make_store()
        assert store.table_count == 3
        assert store.column_count == 4
        assert store.row_count == 4

    def test_contains(self):
        store = make_store()
        assert ("db", "t1") in store
        assert ("db", "zzz") not in store

    def test_table_lookup(self):
        assert make_store().table("t1", database="db").name == "t1"

    def test_flat_database(self):
        assert make_store().table("flat").name == "flat"

    def test_missing_table_raises(self):
        with pytest.raises(TableNotFoundError):
            make_store().table("missing", database="db")

    def test_replace_table(self):
        store = make_store()
        store.add_table(Table("t1", [Column("z", [9])]), database="db")
        assert store.table("t1", database="db").column_names == ("z",)

    def test_remove_table(self):
        store = make_store()
        store.remove_table("t1", database="db")
        assert ("db", "t1") not in store

    def test_remove_missing_raises(self):
        with pytest.raises(TableNotFoundError):
            make_store().remove_table("zzz")

    def test_clear(self):
        store = make_store()
        store.clear()
        assert len(store) == 0


class TestColumnAccess:
    def test_resolve_ref(self):
        column = make_store().column(ColumnRef("db", "t1", "a"))
        assert column.values == (1, 2)

    def test_missing_column_raises(self):
        with pytest.raises(ColumnNotFoundError):
            make_store().column(ColumnRef("db", "t1", "zzz"))

    def test_missing_table_raises(self):
        with pytest.raises(TableNotFoundError):
            make_store().column(ColumnRef("db", "zzz", "a"))

    def test_column_refs_enumerates_all(self):
        refs = list(make_store().column_refs())
        assert ColumnRef("db", "t1", "a") in refs
        assert ColumnRef("", "flat", "d") in refs
        assert len(refs) == 4

    def test_tables_iteration(self):
        names = [(db, table.name) for db, table in make_store().tables()]
        assert ("db", "t1") in names
        assert ("", "flat") in names

    def test_estimated_bytes_positive(self):
        assert make_store().estimated_bytes() > 0
