"""Tests for repro.index.exact and repro.index.pivot."""

from __future__ import annotations

import numpy as np
import pytest

from repro._util import rng_for
from repro.errors import DimensionMismatchError, EmptyIndexError
from repro.index.exact import ExactCosineIndex
from repro.index.pivot import PivotFilterIndex, cosine_to_radius


def cloud(n: int, dim: int, key: str) -> np.ndarray:
    matrix = rng_for("pivot-test", key).standard_normal((n, dim))
    return matrix / np.linalg.norm(matrix, axis=1, keepdims=True)


class TestExactCosineIndex:
    def test_empty_raises(self):
        with pytest.raises(EmptyIndexError):
            ExactCosineIndex(8).query(np.ones(8), 1)

    def test_zero_vector_rejected(self):
        with pytest.raises(ValueError):
            ExactCosineIndex(8).add("z", np.zeros(8))

    def test_dim_mismatch(self):
        with pytest.raises(DimensionMismatchError):
            ExactCosineIndex(8).add("a", np.ones(4))

    def test_bad_k(self):
        index = ExactCosineIndex(8)
        index.add("a", np.ones(8))
        with pytest.raises(ValueError):
            index.query(np.ones(8), -1)

    def test_topk_order(self):
        index = ExactCosineIndex(4)
        index.add("same", np.array([1.0, 0, 0, 0]))
        index.add("orthogonal", np.array([0, 1.0, 0, 0]))
        index.add("opposite", np.array([-1.0, 0, 0, 0]))
        results = index.query(np.array([1.0, 0, 0, 0]), 3)
        assert [key for key, _ in results] == ["same", "orthogonal", "opposite"]

    def test_threshold(self):
        index = ExactCosineIndex(4)
        index.add("orthogonal", np.array([0, 1.0, 0, 0]))
        assert index.query(np.array([1.0, 0, 0, 0]), 3, threshold=0.5) == []

    def test_exclude(self):
        index = ExactCosineIndex(4)
        vector = np.array([1.0, 0, 0, 0])
        index.add("self", vector)
        assert index.query(vector, 3, exclude="self") == []

    def test_k_truncates(self):
        index = ExactCosineIndex(4)
        for i in range(10):
            vector = np.ones(4) + 0.01 * i
            index.add(i, vector)
        assert len(index.query(np.ones(4), 3)) == 3

    def test_incremental_add_invalidates_cache(self):
        index = ExactCosineIndex(4)
        index.add("a", np.array([1.0, 0, 0, 0]))
        index.query(np.ones(4), 1)
        index.add("b", np.array([0.9, 0.1, 0, 0]))
        assert len(index.query(np.ones(4), 5)) == 2


class TestCosineToRadius:
    def test_threshold_one_is_zero(self):
        assert cosine_to_radius(1.0) == pytest.approx(0.0)

    def test_threshold_zero_is_sqrt2(self):
        assert cosine_to_radius(0.0) == pytest.approx(np.sqrt(2.0))

    def test_monotone_decreasing(self):
        radii = [cosine_to_radius(c) for c in (-1.0, 0.0, 0.5, 0.9, 1.0)]
        assert radii == sorted(radii, reverse=True)


class TestPivotFilterIndex:
    def test_empty_raises(self):
        with pytest.raises(EmptyIndexError):
            PivotFilterIndex(8).query(np.ones(8), 1)

    def test_build_empty_raises(self):
        with pytest.raises(EmptyIndexError):
            PivotFilterIndex(8).build()

    def test_zero_vector_rejected(self):
        with pytest.raises(ValueError):
            PivotFilterIndex(8).add("z", np.zeros(8))

    def test_agrees_with_exact_search(self):
        """The pivot filter is lossless: same results as brute force."""
        dim, n_points = 16, 200
        points = cloud(n_points, dim, "agree")
        pivot = PivotFilterIndex(dim, n_pivots=6, threshold=0.3)
        exact = ExactCosineIndex(dim)
        for index, vector in enumerate(points):
            pivot.add(index, vector)
            exact.add(index, vector)
        queries = cloud(10, dim, "queries")
        for query in queries:
            expected = exact.query(query, 10, threshold=0.3)
            got = pivot.query(query, 10)
            assert [key for key, _ in got] == [key for key, _ in expected]
            for (_, a), (_, b) in zip(got, expected):
                assert a == pytest.approx(b)

    def test_pruning_happens(self):
        """On clustered data most points should be filtered, not verified."""
        dim = 16
        index = PivotFilterIndex(dim, n_pivots=8, threshold=0.9)
        rng = rng_for("pivot-prune")
        # Two tight, far-apart clusters.
        center_a = rng.standard_normal(dim)
        center_a /= np.linalg.norm(center_a)
        center_b = -center_a
        for i in range(100):
            for name, center in (("a", center_a), ("b", center_b)):
                vector = center + 0.05 * rng.standard_normal(dim)
                index.add(f"{name}{i}", vector / np.linalg.norm(vector))
        index.build()
        index.query(center_a, 5)
        assert index.last_verified_count < 150
        assert index.prune_rate > 0.2

    def test_auto_build_on_query(self):
        index = PivotFilterIndex(8, n_pivots=2)
        index.add("a", np.ones(8))
        results = index.query(np.ones(8), 1)
        assert results[0][0] == "a"

    def test_add_after_build_rebuilds(self):
        index = PivotFilterIndex(8, n_pivots=2)
        index.add("a", np.ones(8))
        index.build()
        vector = np.ones(8)
        vector[0] = -1
        index.add("b", vector)
        keys = {key for key, _ in index.query(np.ones(8), 5, threshold=-1.0)}
        assert keys == {"a", "b"}

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            PivotFilterIndex(0)
        with pytest.raises(ValueError):
            PivotFilterIndex(8, n_pivots=0)
