"""Shared fixtures.

Heavy artifacts (the pretrained embedding model, generated corpora) are
session-scoped: they are deterministic, so sharing them across tests loses
nothing and saves minutes.
"""

from __future__ import annotations

import pytest

from repro.core.warpgate import WarpGate
from repro.datasets.nextiajd import generate_testbed
from repro.datasets.sigma import generate_sigma_sample_database
from repro.datasets.spider import generate_spider_corpus
from repro.embedding.registry import get_model
from repro.storage.column import Column
from repro.storage.table import Table
from repro.warehouse.catalog import Warehouse
from repro.warehouse.connector import WarehouseConnector


@pytest.fixture(scope="session")
def webtable_model():
    """The shared pretrained Web Table Embedding model."""
    return get_model("webtable")


@pytest.fixture(scope="session")
def testbed_xs():
    """The smallest NextiaJD testbed (deterministic)."""
    return generate_testbed("XS")


@pytest.fixture(scope="session")
def spider_corpus():
    """A reduced Spider corpus: fewer databases for fast tests."""
    return generate_spider_corpus(n_databases=6, max_queries=25)


@pytest.fixture(scope="session")
def sigma_corpus():
    """Sigma Sample Database at reduced scale, without snapshot copies."""
    return generate_sigma_sample_database(rows_scale=0.25, with_snapshots=False)


@pytest.fixture(scope="session")
def indexed_warpgate(testbed_xs):
    """A WarpGate instance indexed over testbedXS (shared, read-only)."""
    system = WarpGate()
    system.index_corpus(testbed_xs.connector())
    return system


def make_toy_warehouse() -> Warehouse:
    """Three tiny tables with one obvious join pair (module-level helper)."""
    warehouse = Warehouse("toy")
    companies = [
        "Acme Dynamics Corp", "Global Logistics Inc", "Nova Analytics Llc",
        "Summit Robotics Ltd", "Vertex Energy Group",
    ]
    left = Table(
        "customers",
        [
            Column("id", [1, 2, 3, 4, 5]),
            Column("company", companies),
            Column("amount", [10.5, 20.25, 30.0, 40.75, 55.5]),
        ],
    )
    right = Table(
        "vendors",
        [
            Column("vendor_id", [10, 11, 12, 13, 14]),
            Column("vendor_name", companies),
            Column("city", ["Boston", "Chicago", "Denver", "Austin", "Seattle"]),
        ],
    )
    unrelated = Table(
        "colors",
        [
            Column("color", ["red", "green", "blue", "cyan", "mauve"]),
            Column("hex_len", [3, 5, 4, 4, 5]),
        ],
    )
    for table in (left, right, unrelated):
        warehouse.add_table("db", table)
    return warehouse


@pytest.fixture()
def toy_warehouse() -> Warehouse:
    """Fresh toy warehouse per test (mutation-safe)."""
    return make_toy_warehouse()


@pytest.fixture()
def toy_connector(toy_warehouse) -> WarehouseConnector:
    """Metered connector over the toy warehouse."""
    return WarehouseConnector(toy_warehouse)
