"""Tests for repro.core.system: the shared discovery-system contract."""

from __future__ import annotations

import pytest

from repro.core.candidates import DiscoveryResult
from repro.core.system import IndexReport, JoinDiscoverySystem
from repro.errors import NotIndexedError
from repro.storage.schema import ColumnRef
from repro.storage.types import DataType


class _StubSystem(JoinDiscoverySystem):
    """Minimal concrete system for contract tests."""

    name = "stub"

    def index_corpus(self, connector, *, sampler=None):
        self._connector = connector
        self._indexed = True
        return IndexReport(system=self.name)

    def search(self, query, k=10):
        self._require_indexed()
        return DiscoveryResult(query=query)


class TestEligibleRefs:
    def test_dates_and_booleans_excluded(self, toy_connector):
        from repro.storage.column import Column
        from repro.storage.table import Table

        warehouse = toy_connector.warehouse
        warehouse.add_table(
            "db",
            Table(
                "extras",
                [
                    Column("flag", [True, False]),
                    Column("when", ["2020-01-01", "2021-01-01"], coerce=True),
                    Column("note", ["a", "b"]),
                ],
            ),
        )
        refs = _StubSystem().eligible_refs(toy_connector)
        names = {ref.column for ref in refs if ref.table == "extras"}
        assert names == {"note"}

    def test_all_base_types_included(self, toy_connector):
        refs = _StubSystem().eligible_refs(toy_connector)
        dtypes = set()
        for ref in refs:
            dtypes.add(toy_connector.warehouse.resolve(ref).column(ref.column).dtype)
        assert dtypes == {DataType.STRING, DataType.INTEGER, DataType.FLOAT}


class TestContract:
    def test_connector_before_index_raises(self):
        with pytest.raises(NotIndexedError):
            _ = _StubSystem().connector

    def test_is_indexed_lifecycle(self, toy_connector):
        system = _StubSystem()
        assert not system.is_indexed
        system.index_corpus(toy_connector)
        assert system.is_indexed
        assert system.connector is toy_connector

    def test_load_column_times_and_meters(self, toy_connector):
        system = _StubSystem()
        system.index_corpus(toy_connector)
        column, measured, simulated = system.load_column(
            ColumnRef("db", "customers", "company"), None
        )
        assert len(column) == 5
        assert measured >= 0.0
        assert simulated > 0.0

    def test_repr_mentions_state(self, toy_connector):
        system = _StubSystem()
        assert "empty" in repr(system)
        system.index_corpus(toy_connector)
        assert "indexed" in repr(system)


class TestDropSameTable:
    def test_filters_and_trims(self):
        query = ColumnRef("db", "t", "q")
        scored = [
            (ColumnRef("db", "t", "sibling"), 0.99),
            (ColumnRef("db", "u", "a"), 0.9),
            (ColumnRef("db", "v", "b"), 0.8),
            (ColumnRef("db", "w", "c"), 0.7),
        ]
        kept = JoinDiscoverySystem.drop_same_table(scored, query, 2)
        assert kept == [(ColumnRef("db", "u", "a"), 0.9), (ColumnRef("db", "v", "b"), 0.8)]

    def test_same_name_other_database_kept(self):
        query = ColumnRef("db1", "t", "q")
        scored = [(ColumnRef("db2", "t", "q"), 0.9)]
        assert JoinDiscoverySystem.drop_same_table(scored, query, 5) == scored


class TestIndexReport:
    def test_total_seconds(self):
        report = IndexReport(system="x", wall_seconds=2.0, simulated_load_seconds=3.0)
        assert report.total_seconds == pytest.approx(5.0)

    def test_notes_mutable(self):
        report = IndexReport(system="x")
        report.notes["key"] = "value"
        assert report.notes["key"] == "value"
