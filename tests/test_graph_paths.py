"""Path enumeration, combiners, and graph maintenance under churn."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import WarpGateConfig
from repro.core.warpgate import WarpGate
from repro.graph.joingraph import JoinGraph
from repro.graph.paths import (
    COMBINERS,
    JoinEdge,
    enumerate_paths,
    format_table,
    parse_table,
    reachable_tables,
    resolve_combiner,
)
from repro.storage.schema import ColumnRef

DIM = 8


def edge(left: str, right: str, confidence: float) -> JoinEdge:
    a, b = sorted((ColumnRef.parse(left), ColumnRef.parse(right)), key=str)
    return JoinEdge(a, b, confidence, None, confidence)


def adjacency_of(*edges: JoinEdge) -> dict:
    grid: dict = {}
    for item in edges:
        left, right = item.tables
        grid.setdefault(left, {})[right] = item
        grid.setdefault(right, {})[left] = item
    return grid


A, B, C, D = ("db", "a"), ("db", "b"), ("db", "c"), ("db", "d")


class TestParseFormat:
    def test_round_trip(self):
        assert parse_table("db.orders") == ("db", "orders")
        assert format_table(("db", "orders")) == "db.orders"

    def test_bare_table_name(self):
        assert parse_table("orders") == ("", "orders")
        assert format_table(("", "orders")) == "orders"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            parse_table("  ")


class TestCombiners:
    def test_product_multiplies(self):
        assert COMBINERS["product"]([0.5, 0.5]) == pytest.approx(0.25)

    def test_min_takes_weakest_link(self):
        assert COMBINERS["min"]([0.9, 0.4, 0.8]) == pytest.approx(0.4)

    def test_resolve_accepts_callable(self):
        assert resolve_combiner(max)([0.1, 0.9]) == pytest.approx(0.9)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown combiner"):
            resolve_combiner("mean")


class TestEnumeratePaths:
    def setup_method(self):
        self.grid = adjacency_of(
            edge("db.a.x", "db.b.x", 0.9),
            edge("db.b.y", "db.c.y", 0.8),
            edge("db.a.z", "db.c.z", 0.6),
            edge("db.c.w", "db.d.w", 0.7),
        )

    def test_direct_path_found(self):
        paths = enumerate_paths(self.grid, A, B, max_hops=1)
        assert len(paths) == 1
        assert paths[0].tables == (A, B)
        assert paths[0].hops == 1
        assert paths[0].score == pytest.approx(0.9)

    def test_ranked_by_combined_score(self):
        # a->c direct (0.6) vs a->b->c (0.9 * 0.8 = 0.72): 2-hop wins.
        paths = enumerate_paths(self.grid, A, C, max_hops=2)
        assert [path.tables for path in paths] == [(A, B, C), (A, C)]
        assert paths[0].score == pytest.approx(0.72)

    def test_min_combiner_changes_scores(self):
        paths = enumerate_paths(self.grid, A, C, max_hops=2, combiner="min")
        by_tables = {path.tables: path.score for path in paths}
        assert by_tables[(A, B, C)] == pytest.approx(0.8)
        assert by_tables[(A, C)] == pytest.approx(0.6)

    def test_max_hops_bounds_search(self):
        assert enumerate_paths(self.grid, A, D, max_hops=2) != []
        three_hop = enumerate_paths(self.grid, A, D, max_hops=3)
        assert (A, B, C, D) in [path.tables for path in three_hop]

    def test_limit_truncates_after_ranking(self):
        paths = enumerate_paths(self.grid, A, C, max_hops=2, limit=1)
        assert len(paths) == 1
        assert paths[0].tables == (A, B, C)

    def test_simple_paths_only(self):
        for path in enumerate_paths(self.grid, A, D, max_hops=3, limit=None):
            assert len(set(path.tables)) == len(path.tables)

    def test_no_path_returns_empty(self):
        lonely = ("db", "island")
        grid = dict(self.grid)
        grid[lonely] = {}
        assert enumerate_paths(grid, A, lonely, max_hops=3) == []

    def test_same_table_rejected(self):
        with pytest.raises(ValueError):
            enumerate_paths(self.grid, A, A, max_hops=2)

    def test_bad_max_hops_rejected(self):
        with pytest.raises(ValueError):
            enumerate_paths(self.grid, A, B, max_hops=0)

    def test_to_dict_and_describe(self):
        path = enumerate_paths(self.grid, A, C, max_hops=2)[0]
        payload = path.to_dict()
        assert payload["tables"] == ["db.a", "db.b", "db.c"]
        assert payload["hops"] == 2
        assert payload["score"] == pytest.approx(0.72)
        assert "db.a" in path.describe() and "-[0.900]-" in path.describe()


class TestReachable:
    def test_hop_counts_are_minimal(self):
        grid = adjacency_of(
            edge("db.a.x", "db.b.x", 0.9),
            edge("db.b.y", "db.c.y", 0.8),
            edge("db.a.z", "db.c.z", 0.6),
            edge("db.c.w", "db.d.w", 0.7),
        )
        hops = reachable_tables(grid, A, max_hops=3)
        assert hops == {B: 1, C: 1, D: 2}

    def test_max_hops_truncates_frontier(self):
        grid = adjacency_of(
            edge("db.a.x", "db.b.x", 0.9),
            edge("db.b.y", "db.c.y", 0.8),
            edge("db.c.w", "db.d.w", 0.7),
        )
        assert reachable_tables(grid, A, max_hops=1) == {B: 1}
        assert reachable_tables(grid, A, max_hops=2) == {B: 1, C: 2}


# -- incremental maintenance == full rebuild (property) ---------------------------


def unit_vector(rng: np.random.Generator) -> np.ndarray:
    vector = rng.normal(size=DIM).astype(np.float32)
    return vector / np.linalg.norm(vector)


def bulk_engine() -> WarpGate:
    engine = WarpGate(WarpGateConfig(model_name="hashing", dim=DIM))
    engine._indexed = True
    return engine


def graph_snapshot(graph: JoinGraph) -> dict:
    return {
        (str(item.left), str(item.right)): (item.cosine, item.confidence)
        for item in graph.edges()
    }


def all_paths_snapshot(graph: JoinGraph) -> dict:
    tables = graph.tables()
    snapshot = {}
    for src in tables:
        for dst in tables:
            if src != dst:
                snapshot[(src, dst)] = [
                    (path.tables, round(path.score, 6))
                    for path in graph.find_paths(src, dst, max_hops=3, limit=None)
                ]
    return snapshot


class TestChurnEquivalence:
    """`find_paths` after add/drop/refresh churn matches a from-scratch build.

    Mirrors the sharded-vs-1-shard equivalence style: one graph rides an
    engine through random mutations (with the service's invalidation
    discipline), the other is built fresh over the surviving content.
    """

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10_000))
    def test_incremental_matches_fresh(self, seed):
        rng = np.random.default_rng(seed)
        engine = bulk_engine()
        graph = JoinGraph(engine, edge_threshold=0.6)
        live: dict[ColumnRef, np.ndarray] = {}
        for step in range(50):
            roll = rng.random()
            if live and roll < 0.3:
                victim = sorted(live, key=str)[int(rng.integers(len(live)))]
                engine._index.remove(victim)
                del live[victim]
                graph.invalidate_table(victim.table_key)
            elif live and roll < 0.45:
                victim = sorted(live, key=str)[int(rng.integers(len(live)))]
                refreshed = unit_vector(rng)
                engine._index.update(victim, refreshed)
                live[victim] = refreshed
                graph.invalidate_table(victim.table_key)
            else:
                ref = ColumnRef(
                    "db", f"t{int(rng.integers(6))}", f"c{step}"
                )
                vector = unit_vector(rng)
                engine._index.add(ref, vector)
                live[ref] = vector
                graph.invalidate_table(ref.table_key)
            if rng.random() < 0.25:
                graph.ensure_current()  # interleave syncs mid-churn
        graph.ensure_current()

        fresh_engine = bulk_engine()
        for ref in sorted(live, key=str):
            fresh_engine._index.add(ref, live[ref])
        fresh = JoinGraph(fresh_engine, edge_threshold=0.6)
        fresh.ensure_current()

        churned_edges = graph_snapshot(graph)
        fresh_edges = graph_snapshot(fresh)
        assert churned_edges.keys() == fresh_edges.keys()
        for pair, (cosine, confidence) in churned_edges.items():
            assert cosine == pytest.approx(fresh_edges[pair][0], abs=1e-6)
            assert confidence == pytest.approx(fresh_edges[pair][1], abs=1e-6)
        assert graph.tables() == fresh.tables()
        assert all_paths_snapshot(graph) == all_paths_snapshot(fresh)

    def test_unannounced_mutation_triggers_full_resync(self):
        """A generation move with no membership diff rebuilds everything."""
        rng = np.random.default_rng(7)
        engine = bulk_engine()
        refs = [ColumnRef("db", f"t{i % 3}", f"c{i}") for i in range(9)]
        for ref in refs:
            engine._index.add(ref, unit_vector(rng))
        graph = JoinGraph(engine, edge_threshold=0.0)
        graph.ensure_current()
        # In-place refresh WITHOUT invalidate_table: membership unchanged.
        engine._index.update(refs[0], unit_vector(rng))
        assert graph.ensure_current() is True
        fresh = JoinGraph(engine, edge_threshold=0.0)
        fresh.ensure_current()
        assert graph_snapshot(graph) == graph_snapshot(fresh)


class TestPruneEquivalence:
    """Branch-and-bound pruning must be invisible in the results.

    A named monotone combiner with a ``limit`` activates the
    best-possible-score prune inside :func:`enumerate_paths`; an
    arithmetically identical *callable* combiner disables it.  Over
    random graphs — including heavy score ties, which exercise the
    strict-inequality boundary the lexical tie-break depends on — both
    enumerations must return identical paths and identical float scores.
    """

    @staticmethod
    def random_adjacency(rng: np.random.Generator, tie_pool: list[float] | None):
        tables = [f"db.t{i}" for i in range(int(rng.integers(4, 9)))]
        edges = []
        for i, left in enumerate(tables):
            for right in tables[i + 1 :]:
                if rng.random() < 0.55:
                    if tie_pool is not None:
                        confidence = float(tie_pool[int(rng.integers(len(tie_pool)))])
                    else:
                        confidence = float(rng.uniform(0.05, 1.0))
                    edges.append(edge(f"{left}.x", f"{right}.y", confidence))
        return tables, adjacency_of(*edges)

    @staticmethod
    def unpruned(adjacency, src, dst, *, max_hops, limit, combiner):
        reference = dict(COMBINERS)  # named → equivalent plain callable
        return enumerate_paths(
            adjacency,
            src,
            dst,
            max_hops=max_hops,
            limit=limit,
            combiner=lambda scores, name=combiner: reference[name](list(scores)),
        )

    @settings(max_examples=60, deadline=None)
    @given(st.integers(0, 10_000), st.booleans(), st.sampled_from(["product", "min"]))
    def test_pruned_equals_unpruned(self, seed, ties, combiner):
        rng = np.random.default_rng(seed)
        tie_pool = [0.3, 0.7, 0.9] if ties else None
        tables, adjacency = self.random_adjacency(rng, tie_pool)
        src, dst = parse_table(tables[0]), parse_table(tables[-1])
        for limit in (1, 3, None):
            got = enumerate_paths(
                adjacency, src, dst, max_hops=4, limit=limit, combiner=combiner
            )
            want = self.unpruned(
                adjacency, src, dst, max_hops=4, limit=limit, combiner=combiner
            )
            assert [(p.tables, p.score) for p in got] == [
                (p.tables, p.score) for p in want
            ]

    def test_product_prune_disabled_for_super_unit_confidence(self):
        """Confidences > 1 break product monotonicity; prune must stand down."""
        grid = adjacency_of(
            edge("db.a.x", "db.b.y", 0.4),
            edge("db.b.y", "db.d.y", 1.5),
            edge("db.a.x", "db.c.y", 0.9),
            edge("db.c.y", "db.d.y", 0.1),
        )
        got = enumerate_paths(grid, A, D, max_hops=2, limit=1, combiner="product")
        # a-b-d scores 0.4*1.5=0.6 and would be pruned at the 0.4 prefix
        # if the bound assumed factors <= 1; correctness requires it wins.
        assert got[0].tables == (A, B, D)
        assert got[0].score == pytest.approx(0.6)
