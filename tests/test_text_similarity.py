"""Tests for repro.text.similarity."""

from __future__ import annotations

from collections import Counter

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.text.similarity import (
    containment,
    cosine_of_counts,
    jaccard,
    jaro_winkler,
    levenshtein,
    normalized_levenshtein,
    overlap_coefficient,
)

sets = st.frozensets(st.integers(0, 30), max_size=15)


class TestJaccard:
    def test_identical(self):
        assert jaccard({1, 2}, {1, 2}) == 1.0

    def test_disjoint(self):
        assert jaccard({1}, {2}) == 0.0

    def test_both_empty(self):
        assert jaccard(frozenset(), frozenset()) == 1.0

    def test_one_empty(self):
        assert jaccard(frozenset(), {1}) == 0.0

    def test_half_overlap(self):
        assert jaccard({1, 2}, {2, 3}) == pytest.approx(1 / 3)

    @given(sets, sets)
    def test_symmetric(self, a, b):
        assert jaccard(a, b) == pytest.approx(jaccard(b, a))

    @given(sets, sets)
    def test_bounded(self, a, b):
        assert 0.0 <= jaccard(a, b) <= 1.0

    @given(sets)
    def test_self_similarity_is_one(self, a):
        assert jaccard(a, a) == 1.0


class TestContainment:
    def test_full_containment(self):
        assert containment({1, 2}, {1, 2, 3}) == 1.0

    def test_directional(self):
        assert containment({1, 2, 3, 4}, {1, 2}) == 0.5
        assert containment({1, 2}, {1, 2, 3, 4}) == 1.0

    def test_empty_query(self):
        assert containment(frozenset(), {1}) == 0.0

    @given(sets, sets)
    def test_bounded(self, a, b):
        assert 0.0 <= containment(a, b) <= 1.0

    @given(sets, sets)
    def test_containment_at_least_jaccard(self, a, b):
        if a:
            assert containment(a, b) >= jaccard(a, b) - 1e-12


class TestCosineOfCounts:
    def test_identical(self):
        assert cosine_of_counts(Counter("aab"), Counter("aab")) == pytest.approx(1.0)

    def test_disjoint(self):
        assert cosine_of_counts(Counter("aa"), Counter("bb")) == 0.0

    def test_empty(self):
        assert cosine_of_counts(Counter(), Counter("a")) == 0.0

    @given(st.text(max_size=30), st.text(max_size=30))
    def test_bounded_and_symmetric(self, a, b):
        left = cosine_of_counts(Counter(a), Counter(b))
        right = cosine_of_counts(Counter(b), Counter(a))
        assert 0.0 <= left <= 1.0 + 1e-9
        assert left == pytest.approx(right)


class TestLevenshtein:
    def test_identical(self):
        assert levenshtein("abc", "abc") == 0

    def test_single_substitution(self):
        assert levenshtein("abc", "abd") == 1

    def test_insertion(self):
        assert levenshtein("abc", "abxc") == 1

    def test_empty_vs_word(self):
        assert levenshtein("", "abc") == 3

    def test_classic_example(self):
        assert levenshtein("kitten", "sitting") == 3

    @given(st.text(max_size=20), st.text(max_size=20))
    def test_symmetric(self, a, b):
        assert levenshtein(a, b) == levenshtein(b, a)

    @given(st.text(max_size=20), st.text(max_size=20))
    def test_bounded_by_longest(self, a, b):
        assert levenshtein(a, b) <= max(len(a), len(b))

    @given(st.text(max_size=15), st.text(max_size=15), st.text(max_size=15))
    def test_triangle_inequality(self, a, b, c):
        assert levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c)


class TestNormalizedLevenshtein:
    def test_both_empty(self):
        assert normalized_levenshtein("", "") == 1.0

    def test_identical(self):
        assert normalized_levenshtein("abc", "abc") == 1.0

    def test_completely_different(self):
        assert normalized_levenshtein("aaa", "bbb") == 0.0

    @given(st.text(max_size=20), st.text(max_size=20))
    def test_bounded(self, a, b):
        assert 0.0 <= normalized_levenshtein(a, b) <= 1.0


class TestJaroWinkler:
    def test_identical(self):
        assert jaro_winkler("customer", "customer") == 1.0

    def test_empty_vs_word(self):
        assert jaro_winkler("", "abc") == 0.0

    def test_prefix_boost(self):
        base_pair = jaro_winkler("martha", "marhta")
        assert base_pair > 0.9

    def test_prefix_weight_validated(self):
        with pytest.raises(ValueError):
            jaro_winkler("a", "b", prefix_weight=0.5)

    @given(st.text(max_size=20), st.text(max_size=20))
    def test_bounded_and_symmetric(self, a, b):
        left = jaro_winkler(a, b)
        assert 0.0 <= left <= 1.0
        assert left == pytest.approx(jaro_winkler(b, a))


class TestOverlapCoefficient:
    def test_subset_is_one(self):
        assert overlap_coefficient({1, 2}, {1, 2, 3}) == 1.0

    def test_accepts_lists(self):
        assert overlap_coefficient([1, 2, 2], [2, 3]) == pytest.approx(0.5)

    def test_empty(self):
        assert overlap_coefficient([], [1]) == 0.0
