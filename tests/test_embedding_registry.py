"""Tests for repro.embedding.registry."""

from __future__ import annotations

import pytest

from repro.embedding.bertlike import BertLikeEmbeddingModel
from repro.embedding.hashing import HashingEmbeddingModel
from repro.embedding.registry import available_models, clear_model_cache, get_model
from repro.embedding.webtable import WebTableEmbeddingModel
from repro.errors import UnknownModelError


class TestRegistry:
    def test_available_models(self):
        assert set(available_models()) == {
            "webtable",
            "hashing",
            "bertlike",
            "cooccur",
            "contextual",
        }

    def test_unknown_model_raises_with_hint(self):
        with pytest.raises(UnknownModelError) as excinfo:
            get_model("gpt")
        assert "webtable" in str(excinfo.value)

    def test_hashing_model(self):
        model = get_model("hashing", dim=32)
        assert isinstance(model, HashingEmbeddingModel)
        assert model.dim == 32

    def test_webtable_pretrained_and_cached(self):
        first = get_model("webtable")
        second = get_model("webtable")
        assert isinstance(first, WebTableEmbeddingModel)
        assert first.is_trained
        assert first is second  # cached artifact, one training per process

    def test_bertlike_wraps_webtable(self):
        model = get_model("bertlike")
        assert isinstance(model, BertLikeEmbeddingModel)
        assert isinstance(model.base_model, WebTableEmbeddingModel)
        assert model.base_model is get_model("webtable")

    def test_cooccur_is_column_only_webtable_variant(self):
        model = get_model("cooccur")
        assert isinstance(model, WebTableEmbeddingModel)
        assert model.name == "cooccur"
        assert model.is_trained
        assert model is get_model("cooccur")  # cached like the others
        assert model is not get_model("webtable")

    def test_contextual_is_light_bertlike(self):
        model = get_model("contextual")
        assert isinstance(model, BertLikeEmbeddingModel)
        assert model.name == "contextual"
        assert model.n_layers < get_model("bertlike").n_layers
        assert model.base_model is get_model("webtable")

    def test_clear_cache_forces_retrain_identity_change(self):
        first = get_model("webtable")
        clear_model_cache()
        try:
            second = get_model("webtable")
            assert first is not second
        finally:
            # Leave the shared cache holding a trained model for other tests.
            pass
