"""Tests for repro.index.lsh (SimHash LSH with exact re-ranking)."""

from __future__ import annotations

import numpy as np
import pytest

from repro._util import rng_for
from repro.errors import DimensionMismatchError, EmptyIndexError
from repro.index.exact import ExactCosineIndex
from repro.index.lsh import SimHashLSHIndex


def random_unit(dim: int, key: str) -> np.ndarray:
    vector = rng_for("lsh-test", key).standard_normal(dim)
    return vector / np.linalg.norm(vector)


class TestConstruction:
    def test_bands_must_divide_bits(self):
        with pytest.raises(ValueError):
            SimHashLSHIndex(8, n_bits=100, n_bands=16)

    def test_threshold_validated(self):
        with pytest.raises(ValueError):
            SimHashLSHIndex(8, threshold=2.0)

    def test_repr(self):
        index = SimHashLSHIndex(8)
        assert "SimHashLSHIndex" in repr(index)


class TestAdd:
    def test_len_grows(self):
        index = SimHashLSHIndex(8)
        index.add("a", random_unit(8, "a"))
        assert len(index) == 1

    def test_zero_vector_rejected(self):
        with pytest.raises(ValueError):
            SimHashLSHIndex(8).add("z", np.zeros(8))

    def test_dim_mismatch_rejected(self):
        with pytest.raises(DimensionMismatchError):
            SimHashLSHIndex(8).add("a", np.ones(9))

    def test_add_many(self):
        index = SimHashLSHIndex(8)
        index.add_many([("a", random_unit(8, "a")), ("b", random_unit(8, "b"))])
        assert len(index) == 2


class TestQuery:
    def test_empty_index_raises(self):
        with pytest.raises(EmptyIndexError):
            SimHashLSHIndex(8).query(np.ones(8), 5)

    def test_bad_k_rejected(self):
        index = SimHashLSHIndex(8)
        index.add("a", random_unit(8, "a"))
        with pytest.raises(ValueError):
            index.query(np.ones(8), 0)

    def test_finds_exact_duplicate(self):
        index = SimHashLSHIndex(16, threshold=0.5)
        vector = random_unit(16, "x")
        index.add("x", vector)
        results = index.query(vector, 1)
        assert results == [("x", pytest.approx(1.0))]

    def test_exclude_key(self):
        index = SimHashLSHIndex(16, threshold=0.5)
        vector = random_unit(16, "x")
        index.add("x", vector)
        index.add("y", vector)
        results = index.query(vector, 5, exclude="x")
        assert [key for key, _ in results] == ["y"]

    def test_threshold_filters(self):
        index = SimHashLSHIndex(16, threshold=0.99)
        base = random_unit(16, "base")
        drift = base + 0.5 * random_unit(16, "drift")
        drift /= np.linalg.norm(drift)
        index.add("far", drift)
        assert index.query(base, 5) == []

    def test_override_threshold(self):
        index = SimHashLSHIndex(16, threshold=0.99)
        base = random_unit(16, "base")
        drift = base + 0.3 * random_unit(16, "drift2")
        drift /= np.linalg.norm(drift)
        index.add("near", drift)
        assert index.query(base, 5, threshold=0.5) != []

    def test_zero_query_returns_empty(self):
        index = SimHashLSHIndex(8)
        index.add("a", random_unit(8, "a"))
        assert index.query(np.zeros(8), 3) == []

    def test_ranked_descending(self):
        index = SimHashLSHIndex(16, threshold=-1.0, n_bands=64, n_bits=128)
        base = random_unit(16, "base")
        for key, noise in (("close", 0.1), ("mid", 0.4), ("far", 1.0)):
            vector = base + noise * random_unit(16, key)
            index.add(key, vector / np.linalg.norm(vector))
        results = index.query(base, 3)
        scores = [score for _, score in results]
        assert scores == sorted(scores, reverse=True)
        assert results[0][0] == "close"

    def test_candidate_count_tracked(self):
        index = SimHashLSHIndex(16, threshold=0.0)
        vector = random_unit(16, "v")
        index.add("v", vector)
        index.query(vector, 1)
        assert index.last_candidate_count >= 1


class TestRecallAgainstExact:
    def test_high_recall_on_near_neighbors(self):
        """LSH must retrieve nearly all candidates above its threshold."""
        dim, n_points = 32, 300
        lsh = SimHashLSHIndex(dim, n_bits=128, n_bands=32, threshold=0.8)
        exact = ExactCosineIndex(dim)
        rng = rng_for("lsh-recall")
        base = rng.standard_normal(dim)
        base /= np.linalg.norm(base)
        for point in range(n_points):
            noise = 0.05 + 1.5 * (point / n_points)
            vector = base + noise * rng.standard_normal(dim)
            vector /= np.linalg.norm(vector)
            lsh.add(point, vector)
            exact.add(point, vector)
        expected = {key for key, _ in exact.query(base, 50, threshold=0.8)}
        got = {key for key, _ in lsh.query(base, 50)}
        if expected:
            recall = len(expected & got) / len(expected)
            assert recall >= 0.9

    def test_scores_match_exact_cosine(self):
        """Re-ranking uses true cosine, not the hash estimate."""
        dim = 16
        lsh = SimHashLSHIndex(dim, threshold=-1.0)
        base = random_unit(dim, "q")
        near = base + 0.2 * random_unit(dim, "n")
        near /= np.linalg.norm(near)
        lsh.add("near", near)
        results = dict(lsh.query(base, 1))
        # float32 arena storage bounds score precision at ~1e-7 relative.
        assert results["near"] == pytest.approx(float(base @ near), abs=1e-6)


class TestExpectedCandidateRate:
    def test_monotone_in_similarity(self):
        index = SimHashLSHIndex(16)
        rates = [index.expected_candidate_rate(c) for c in (0.0, 0.5, 0.9, 0.99)]
        assert rates == sorted(rates)

    def test_bounds(self):
        index = SimHashLSHIndex(16)
        assert 0.0 <= index.expected_candidate_rate(0.0) <= 1.0
        assert index.expected_candidate_rate(1.0) == pytest.approx(1.0)
