"""Tests for the exception hierarchy."""

from __future__ import annotations

import pytest

from repro import errors


class TestHierarchy:
    @pytest.mark.parametrize(
        "exception_class",
        [
            errors.StorageError,
            errors.WarehouseError,
            errors.EmbeddingError,
            errors.IndexError_,
            errors.DiscoveryError,
            errors.EvaluationError,
        ],
    )
    def test_subsystem_bases_derive_from_repro_error(self, exception_class):
        assert issubclass(exception_class, errors.ReproError)

    @pytest.mark.parametrize(
        "exception_class,base",
        [
            (errors.TypeInferenceError, errors.StorageError),
            (errors.SchemaError, errors.StorageError),
            (errors.CsvFormatError, errors.StorageError),
            (errors.ColumnNotFoundError, errors.StorageError),
            (errors.TableNotFoundError, errors.StorageError),
            (errors.DatabaseNotFoundError, errors.WarehouseError),
            (errors.ScanBudgetExceededError, errors.WarehouseError),
            (errors.ModelNotTrainedError, errors.EmbeddingError),
            (errors.UnknownModelError, errors.EmbeddingError),
            (errors.EmptyIndexError, errors.IndexError_),
            (errors.DimensionMismatchError, errors.IndexError_),
            (errors.NotIndexedError, errors.DiscoveryError),
            (errors.InvalidQueryError, errors.DiscoveryError),
            (errors.MissingGroundTruthError, errors.EvaluationError),
        ],
    )
    def test_leaf_classes(self, exception_class, base):
        assert issubclass(exception_class, base)

    def test_index_error_does_not_shadow_builtin(self):
        assert errors.IndexError_ is not IndexError
        assert not issubclass(errors.IndexError_, IndexError)


class TestMessages:
    def test_column_not_found_mentions_location(self):
        error = errors.ColumnNotFoundError("col", "tbl")
        assert "col" in str(error)
        assert "tbl" in str(error)
        assert error.column == "col"

    def test_column_not_found_without_table(self):
        assert "not found" in str(errors.ColumnNotFoundError("col"))

    def test_table_not_found(self):
        error = errors.TableNotFoundError("t", "db")
        assert error.table == "t"
        assert "db" in str(error)

    def test_database_not_found(self):
        assert "sales" in str(errors.DatabaseNotFoundError("sales"))

    def test_scan_budget_carries_numbers(self):
        error = errors.ScanBudgetExceededError(100, 10)
        assert error.requested == 100
        assert error.remaining == 10
        assert "100" in str(error)

    def test_unknown_model_lists_available(self):
        error = errors.UnknownModelError("gpt", ("a", "b"))
        assert "a, b" in str(error)

    def test_dimension_mismatch_carries_dims(self):
        error = errors.DimensionMismatchError(64, 32)
        assert error.expected == 64
        assert error.actual == 32

    def test_catch_all_at_boundary(self):
        """API users can catch every library error with one except clause."""
        with pytest.raises(errors.ReproError):
            raise errors.EmptyIndexError("boom")
