"""Process-pool fan-out correctness: ProcessShardedIndex ≡ ShardedIndex.

The multi-process engine's contract is the in-process sharded engine's,
verbatim: one worker process per shard over shared mmap'd segments must
return bitwise-identical ranked lists — same keys, same float32 scores,
same canonical tie order — for every backend, both transports, with
quantization, and across add/remove churn that forces segment republish
and worker remaps.  On top of exactness it adds a liveness contract: a
worker killed mid-query surfaces :class:`~repro.errors.WorkerCrashError`
(never a hang), the pool respawns the worker from the last published
segment, and the very next query is exact again.
"""

from __future__ import annotations

import os
import signal
import threading
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._util import rng_for
from repro.errors import IndexError_, WorkerCrashError
from repro.index.exact import ExactCosineIndex
from repro.index.lsh import SimHashLSHIndex
from repro.index.pivot import PivotFilterIndex
from repro.index.procpool import ProcessShardedIndex
from repro.index.sharding import ShardedIndex

DIM = 24
BACKENDS = ["lsh", "exact", "pivot"]


def cloud(n: int, key: object) -> np.ndarray:
    matrix = rng_for("procpool-test", key).standard_normal((n, DIM))
    return matrix / np.linalg.norm(matrix, axis=1, keepdims=True)


def backend_factory(backend: str, threshold: float = 0.2):
    if backend == "lsh":
        return lambda: SimHashLSHIndex(DIM, n_bits=64, n_bands=32, threshold=threshold)
    if backend == "exact":
        return lambda: ExactCosineIndex(DIM)
    return lambda: PivotFilterIndex(DIM, n_pivots=5, threshold=threshold)


def make_pair(backend: str, n_shards: int = 3, transport: str = "pipe"):
    factory = backend_factory(backend)
    reference = ShardedIndex(DIM, factory, n_shards=n_shards)
    pool = ProcessShardedIndex(
        DIM, factory, n_shards=n_shards, transport=transport
    )
    return reference, pool


def assert_bitwise_equal(reference, pool, queries, k, **kwargs):
    """The pool's results must equal the in-process engine's *exactly*.

    No approx: segments are published layout-preserving (tombstones and
    alive mask ship verbatim), so worker arenas are physically identical
    to the writer's — same matrix shape, same BLAS reduction order, same
    float32 scores bit for bit — and the merge is the same
    single-argpartition top-k.
    """
    excludes = kwargs.pop("excludes", None)
    for position in range(queries.shape[0]):
        exclude = excludes[position] if excludes is not None else None
        want = reference.query(queries[position], k, exclude=exclude, **kwargs)
        got = pool.query(queries[position], k, exclude=exclude, **kwargs)
        assert got == want
    want_batch = reference.search_batch(queries, k, excludes=excludes, **kwargs)
    got_batch = pool.search_batch(queries, k, excludes=excludes, **kwargs)
    assert got_batch == want_batch


@pytest.mark.parametrize("backend", BACKENDS)
class TestProcessShardedEqualsInProcess:
    def test_bulk_load_parity(self, backend):
        reference, pool = make_pair(backend)
        with pool:
            points = cloud(120, "bulk")
            reference.bulk_load(list(range(120)), points)
            pool.bulk_load(list(range(120)), points)
            assert len(pool) == len(reference) == 120
            assert_bitwise_equal(reference, pool, cloud(7, "bulk-q"), 10)

    def test_excludes_and_threshold_parity(self, backend):
        reference, pool = make_pair(backend)
        with pool:
            points = cloud(80, "excl")
            reference.bulk_load(list(range(80)), points)
            pool.bulk_load(list(range(80)), points)
            assert_bitwise_equal(
                reference,
                pool,
                points[:5],
                5,
                threshold=0.4,
                excludes=list(range(5)),
            )

    @settings(max_examples=4, deadline=None)
    @given(st.integers(0, 10_000))
    def test_churn_republish_parity(self, backend, seed):
        """Adds/removes dirty shards; republished segments stay exact.

        Mutations land on the parent writer; each touched shard is saved
        to a fresh generation-suffixed segment and the worker remaps it
        lazily on the next read — after which results must still equal
        the in-process engine bit for bit.
        """
        rng = np.random.default_rng(seed)
        reference, pool = make_pair(backend)
        with pool:
            points = cloud(200, ("churn", seed))
            reference.bulk_load(list(range(100)), points[:100])
            pool.bulk_load(list(range(100)), points[:100])
            queries = cloud(6, ("churn-q", seed))
            assert_bitwise_equal(reference, pool, queries, 9)
            live = set(range(100))
            for step in range(100, 160):
                if live and rng.random() < 0.45:
                    victim = sorted(live)[int(rng.integers(len(live)))]
                    reference.remove(victim)
                    pool.remove(victim)
                    live.discard(victim)
                else:
                    reference.add(step, points[step])
                    pool.add(step, points[step])
                    live.add(step)
            assert sorted(pool.keys()) == sorted(reference.keys())
            assert_bitwise_equal(reference, pool, queries, 9)

    def test_update_parity(self, backend):
        reference, pool = make_pair(backend)
        with pool:
            points = cloud(50, "upd")
            reference.bulk_load(list(range(40)), points[:40])
            pool.bulk_load(list(range(40)), points[:40])
            queries = cloud(4, "upd-q")
            assert_bitwise_equal(reference, pool, queries, 8)
            reference.update(7, points[41])
            pool.update(7, points[41])
            assert_bitwise_equal(reference, pool, queries, 8)


def test_shm_transport_parity():
    reference, pool = make_pair("exact", transport="shm")
    with pool:
        points = cloud(90, "shm")
        reference.bulk_load(list(range(90)), points)
        pool.bulk_load(list(range(90)), points)
        assert_bitwise_equal(reference, pool, cloud(6, "shm-q"), 10)


def test_quantized_parity_including_churn():
    """Int8 + re-rank parity survives removes: codes follow row layout,
    and layout-preserving publish keeps worker layout equal to the
    writer's, so even the approximate preselect is bit-identical."""
    reference, pool = make_pair("exact")
    with pool:
        points = cloud(110, "quant")
        reference.bulk_load(list(range(100)), points[:100])
        pool.bulk_load(list(range(100)), points[:100])
        reference.enable_quantization(4)
        pool.enable_quantization(4)
        reference.build()
        pool.build()
        queries = cloud(6, "quant-q")
        assert_bitwise_equal(reference, pool, queries, 10)
        for victim in (3, 17, 41):
            reference.remove(victim)
            pool.remove(victim)
        for step in (100, 105):
            reference.add(step, points[step])
            pool.add(step, points[step])
        reference.build()
        pool.build()
        assert_bitwise_equal(reference, pool, queries, 10)


def test_worker_crash_surfaces_error_then_restarts():
    """SIGKILL mid-query => WorkerCrashError fast, then exact recovery."""
    reference, pool = make_pair("exact", n_shards=2)
    with pool:
        points = cloud(60, "crash")
        reference.bulk_load(list(range(60)), points)
        pool.bulk_load(list(range(60)), points)
        queries = cloud(4, "crash-q")
        assert pool.search_batch(queries, 5) == reference.search_batch(queries, 5)
        pids = pool.worker_pids()
        assert all(pid is not None for pid in pids)

        pool._test_query_delay_s = 0.6  # hold workers mid-request
        outcome: dict[str, object] = {}

        def probe() -> None:
            try:
                pool.search_batch(queries, 5)
                outcome["result"] = "completed"
            except WorkerCrashError as error:
                outcome["error"] = error

        thread = threading.Thread(target=probe)
        thread.start()
        time.sleep(0.2)
        os.kill(pids[0], signal.SIGKILL)
        thread.join(timeout=15)
        assert not thread.is_alive(), "crashed worker hung the query"
        error = outcome.get("error")
        assert isinstance(error, WorkerCrashError)
        assert error.shard_id == 0

        # The next read respawns the worker from the last published
        # segment and is bitwise-exact again.
        pool._test_query_delay_s = 0.0
        assert pool.search_batch(queries, 5) == reference.search_batch(queries, 5)
        assert pool.worker_pids()[0] not in (None, pids[0])


def test_service_translates_worker_crash_and_recovers():
    """Service boundary: crash => ServiceError(internal), then recovery."""
    from repro.core.config import WarpGateConfig
    from repro.core.profiles import EmbeddingCache
    from repro.core.warpgate import WarpGate
    from repro.service.discovery import DiscoveryService
    from repro.service.types import ServiceError
    from repro.storage.schema import ColumnRef

    cache = EmbeddingCache()
    config = WarpGateConfig(model_name="hashing", dim=DIM).with_workers(2)
    engine = WarpGate(config, cache=cache)
    refs = [ColumnRef("db", f"t{i // 8}", f"c{i % 8}") for i in range(40)]
    engine._index.bulk_load(refs, cloud(40, "svc"))
    engine._indexed = True
    query_ref = ColumnRef("db", "probe", "col")
    cache.put(query_ref, cloud(1, "svc-q")[0])
    service = DiscoveryService(engine=engine)
    try:
        assert service.stats().workers == 2
        first = service.search(query_ref, 5)  # warms the workers
        pids = engine._index.worker_pids()

        engine._index._test_query_delay_s = 0.6
        outcome: dict[str, object] = {}

        def probe() -> None:
            # k=6: a fresh query-cache key, so the request must reach the
            # workers instead of being served from the generation-keyed
            # result cache the k=5 warm-up populated.
            try:
                service.search(query_ref, 6)
                outcome["result"] = "completed"
            except ServiceError as error:
                outcome["error"] = error

        thread = threading.Thread(target=probe)
        thread.start()
        time.sleep(0.2)
        for pid in pids:
            if pid is not None:
                os.kill(pid, signal.SIGKILL)
                break
        thread.join(timeout=15)
        assert not thread.is_alive(), "crashed worker hung the service"
        error = outcome.get("error")
        assert isinstance(error, ServiceError) and error.code == "internal"

        engine._index._test_query_delay_s = 0.0
        # k=7 misses the cache again: recovery is proven through the
        # respawned workers, and its top-5 prefix must match the
        # pre-crash ranking.
        recovered = service.search(query_ref, 7)
        assert [c.ref for c in recovered.candidates][: len(first.candidates)] == [
            c.ref for c in first.candidates
        ]
    finally:
        service.close()


class TestPoolSurface:
    def test_invalid_construction(self):
        factory = backend_factory("exact")
        with pytest.raises(ValueError):
            ProcessShardedIndex(DIM, factory, n_shards=2, transport="carrier-pigeon")
        with pytest.raises(ValueError):
            ProcessShardedIndex(DIM, factory, n_shards=2, request_timeout_s=0)

    def test_closed_pool_refuses_queries(self):
        _, pool = make_pair("exact", n_shards=2)
        pool.bulk_load(list(range(10)), cloud(10, "closed"))
        pool.close()
        with pytest.raises(IndexError_):
            pool.query(cloud(1, "closed-q")[0], 3)

    def test_close_is_idempotent_and_kills_workers(self):
        _, pool = make_pair("exact", n_shards=2)
        pool.bulk_load(list(range(10)), cloud(10, "kill"))
        pool.search_batch(cloud(2, "kill-q"), 3)
        pids = [pid for pid in pool.worker_pids() if pid is not None]
        assert pids
        pool.close()
        pool.close()
        deadline = time.monotonic() + 5
        while time.monotonic() < deadline:
            if all(not _pid_alive(pid) for pid in pids):
                break
            time.sleep(0.05)
        assert all(not _pid_alive(pid) for pid in pids)

    def test_stale_segments_unlinked_after_remap(self):
        _, pool = make_pair("exact", n_shards=2)
        with pool:
            pool.bulk_load(list(range(20)), cloud(20, "seg"))
            pool.search_batch(cloud(2, "seg-q"), 3)  # publish gen 1
            pool.add(99, cloud(1, "seg-extra")[0])  # dirties one shard
            pool.search_batch(cloud(2, "seg-q"), 3)  # publish gen 2, remap
            segments = sorted(p.name for p in pool._segment_dir.glob("*.npz"))
            # One current segment per shard; no stale generations linger.
            assert len(segments) == 2


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True
