"""Incremental mutation (remove/update) across all three index backends."""

from __future__ import annotations

import numpy as np
import pytest

from repro.index.exact import ExactCosineIndex
from repro.index.lsh import SimHashLSHIndex
from repro.index.pivot import PivotFilterIndex

DIM = 16


def make_index(backend: str):
    if backend == "lsh":
        return SimHashLSHIndex(DIM, n_bits=64, n_bands=16, threshold=-1.0)
    if backend == "exact":
        return ExactCosineIndex(DIM)
    return PivotFilterIndex(DIM, threshold=-1.0)


def unit(seed: int) -> np.ndarray:
    vector = np.random.default_rng(seed).normal(size=DIM)
    return vector / np.linalg.norm(vector)


BACKENDS = ["lsh", "exact", "pivot"]


def assert_same_results(left, right):
    """Same keys in the same order; scores equal up to float32 arithmetic.

    The arena stores float32 rows, and BLAS may pick different kernels for
    different matrix extents, so two histories that agree on content can
    differ in the last ulp of a score.
    """
    assert [key for key, _ in left] == [key for key, _ in right]
    for (_, a), (_, b) in zip(left, right):
        assert a == pytest.approx(b, abs=1e-6)


@pytest.mark.parametrize("backend", BACKENDS)
class TestRemove:
    def test_removed_key_gone_from_results(self, backend):
        index = make_index(backend)
        for i in range(8):
            index.add(f"k{i}", unit(i))
        index.remove("k3")
        assert len(index) == 7
        assert "k3" not in index
        results = index.query(unit(3), 8, threshold=-1.0)
        assert all(key != "k3" for key, _ in results)

    def test_remove_missing_raises(self, backend):
        index = make_index(backend)
        index.add("a", unit(1))
        with pytest.raises(KeyError):
            index.remove("ghost")

    def test_remove_middle_preserves_other_results(self, backend):
        """Swap-with-last compaction must not corrupt surviving entries."""
        index = make_index(backend)
        fresh = make_index(backend)
        for i in range(12):
            index.add(f"k{i}", unit(i))
        index.remove("k4")  # middle: exercises the swap path
        index.remove("k11")  # last: exercises the trivial path
        for i in range(12):
            if i not in (4, 11):
                fresh.add(f"k{i}", unit(i))
        query = unit(99)
        assert_same_results(
            index.query(query, 10, threshold=-1.0),
            fresh.query(query, 10, threshold=-1.0),
        )

    def test_remove_all_then_query_raises(self, backend):
        from repro.errors import EmptyIndexError

        index = make_index(backend)
        index.add("only", unit(0))
        index.remove("only")
        assert len(index) == 0
        with pytest.raises(EmptyIndexError):
            index.query(unit(1), 3)

    def test_interleaved_add_remove_matches_fresh_build(self, backend):
        """Random add/remove churn converges to the same search behavior."""
        rng = np.random.default_rng(7)
        index = make_index(backend)
        live: dict[str, np.ndarray] = {}
        for step in range(60):
            if live and rng.random() < 0.4:
                victim = sorted(live)[int(rng.integers(len(live)))]
                index.remove(victim)
                del live[victim]
            else:
                key = f"v{step}"
                vector = unit(step + 1000)
                index.add(key, vector)
                live[key] = vector
        fresh = make_index(backend)
        for key in sorted(live):
            fresh.add(key, live[key])
        query = unit(4242)
        assert_same_results(
            index.query(query, 5, threshold=-1.0),
            fresh.query(query, 5, threshold=-1.0),
        )


@pytest.mark.parametrize("backend", BACKENDS)
class TestUpdate:
    def test_update_replaces_vector(self, backend):
        index = make_index(backend)
        index.add("x", unit(1))
        index.add("y", unit(2))
        target = unit(50)
        index.update("x", target)
        assert len(index) == 2
        top_key, top_score = index.query(target, 1, threshold=-1.0)[0]
        assert top_key == "x"
        assert top_score == pytest.approx(1.0)

    def test_update_inserts_when_absent(self, backend):
        index = make_index(backend)
        index.update("new", unit(3))
        assert "new" in index
        assert len(index) == 1

    def test_duplicate_add_raises(self, backend):
        index = make_index(backend)
        index.add("x", unit(1))
        with pytest.raises(ValueError):
            index.add("x", unit(2))


class TestLSHBucketIntegrity:
    def test_postings_cover_live_rows_after_churn(self):
        """Candidate generation must see every live row exactly once per band.

        Between compactions, bucket postings may still reference
        tombstoned rows — the alive mask filters them during candidate
        generation — but each *live* arena row must appear in exactly one
        bucket of every band.
        """
        index = SimHashLSHIndex(DIM, n_bits=64, n_bands=16, threshold=-1.0)
        for i in range(20):
            index.add(i, unit(i))
        for victim in (0, 7, 19, 13, 1):
            index.remove(victim)
        arena = index.arena
        state = index._synced_buckets()
        live = set(arena.live_rows().tolist())
        for band_postings in state.postings:
            seen: list[int] = []
            for postings in band_postings.values():
                assert postings, "empty posting lists must not exist"
                assert all(0 <= row < arena.size for row in postings)
                seen.extend(row for row in postings if row in live)
            assert sorted(seen) == sorted(live)

    def test_compaction_rebuilds_dense_buckets(self):
        """After a compaction, postings reference only live, renumbered rows."""
        index = SimHashLSHIndex(DIM, n_bits=64, n_bands=16, threshold=-1.0)
        for i in range(20):
            index.add(i, unit(i))
        for victim in (0, 7, 19, 13, 1):
            index.remove(victim)
        index.arena.compact()
        index.build()  # resynchronize eagerly, as the serving layer does
        state = index._buckets
        count = len(index)
        per_band_total = 0
        for band_postings in state.postings:
            for postings in band_postings.values():
                assert postings, "empty posting lists must not exist"
                assert all(0 <= row < count for row in postings)
                per_band_total += len(postings)
        # Each live entry appears exactly once per band.
        assert per_band_total == count * index.n_bands

    def test_add_right_after_compaction_does_not_duplicate_postings(self):
        """The post-compaction rebuild already covers the row being added."""
        index = SimHashLSHIndex(DIM, n_bits=64, n_bands=16, threshold=-1.0)
        for i in range(40):
            index.add(i, unit(i))
        for victim in range(11):  # > 25% dead: triggers a compaction
            index.remove(victim)
        assert index.arena.generation > 0
        index.add("fresh", unit(999))
        state = index._synced_buckets()
        for band_postings in state.postings:
            for postings in band_postings.values():
                assert len(postings) == len(set(postings))

    def test_threshold_triggered_compaction_preserves_results(self):
        """Crossing the dead-fraction threshold must not change search results."""
        index = SimHashLSHIndex(DIM, n_bits=64, n_bands=16, threshold=-1.0)
        for i in range(40):
            index.add(i, unit(i))
        generation_before = index.arena.generation
        for victim in range(0, 24):  # > 25% dead: forces at least one compaction
            index.remove(victim)
        assert index.arena.generation > generation_before
        fresh = SimHashLSHIndex(DIM, n_bits=64, n_bands=16, threshold=-1.0)
        for i in range(24, 40):
            fresh.add(i, unit(i))
        query = unit(77)
        assert_same_results(
            index.query(query, 10, threshold=-1.0),
            fresh.query(query, 10, threshold=-1.0),
        )
