"""Tests for repro.embedding.webtable."""

from __future__ import annotations

import numpy as np
import pytest

from repro.embedding.webtable import WebTableEmbeddingModel
from repro.errors import ModelNotTrainedError


def tiny_model() -> WebTableEmbeddingModel:
    """Train on a corpus with two clear topics: companies and colors.

    Sequences vary pair composition (not just one repeated sequence) so the
    PPMI matrix is not a degenerate equal-count block design.
    """
    companies = ["acme", "globex", "initech", "umbrella", "corp"]
    colors = ["red", "green", "blue", "teal", "shade"]
    sequences = []
    for index in range(8):
        sequences.append([companies[index % 5], companies[(index + 1) % 5], "corp"])
        sequences.append([colors[index % 5], colors[(index + 2) % 5], "shade"])
    model = WebTableEmbeddingModel(dim=8, min_count=1)
    model.fit(sequences)
    return model


class TestTraining:
    def test_is_trained_after_fit(self):
        assert tiny_model().is_trained

    def test_untrained_raises(self):
        with pytest.raises(ModelNotTrainedError):
            WebTableEmbeddingModel().embed_token("x")

    def test_empty_corpus_rejected(self):
        with pytest.raises(ValueError):
            WebTableEmbeddingModel().fit([])

    def test_min_count_too_high_rejected(self):
        with pytest.raises(ValueError):
            WebTableEmbeddingModel(min_count=100).fit([["a", "b"]])

    def test_invalid_dim(self):
        with pytest.raises(ValueError):
            WebTableEmbeddingModel(dim=0)

    def test_invalid_oov_scale(self):
        with pytest.raises(ValueError):
            WebTableEmbeddingModel(oov_scale=2.0)

    def test_deterministic_retraining(self):
        a = tiny_model().embed_token("acme")
        b = tiny_model().embed_token("acme")
        assert np.allclose(a, b)


class TestGeometry:
    def test_same_topic_closer_than_cross_topic(self):
        model = tiny_model()
        same = model.similarity("acme", "globex")
        cross = model.similarity("acme", "red")
        assert same > cross + 0.2

    def test_self_similarity_is_one(self):
        model = tiny_model()
        assert model.similarity("acme", "acme") == pytest.approx(1.0)

    def test_trained_vectors_unit_norm(self):
        model = tiny_model()
        assert np.linalg.norm(model.embed_token("acme")) == pytest.approx(1.0)


class TestOov:
    def test_oov_uses_hashing_fallback(self):
        model = tiny_model()
        vector = model.embed_token("neverseen")
        assert np.linalg.norm(vector) == pytest.approx(model.oov_scale)

    def test_in_vocabulary(self):
        model = tiny_model()
        assert model.in_vocabulary("acme")
        assert not model.in_vocabulary("neverseen")

    def test_oov_deterministic(self):
        model = tiny_model()
        assert np.allclose(model.embed_token("xy"), model.embed_token("xy"))


class TestInference:
    def test_embed_tokens_shape(self):
        model = tiny_model()
        assert model.embed_tokens(["acme", "red"]).shape == (2, model.dim)

    def test_embed_tokens_empty(self):
        model = tiny_model()
        assert model.embed_tokens([]).shape == (0, model.dim)

    def test_idf_available(self):
        assert tiny_model().idf("acme") > 0

    def test_vocabulary_exposed(self):
        assert "acme" in tiny_model().vocabulary

    def test_row_sequences_add_affinity(self):
        """Row serialization pulls cross-topic tokens together."""
        columns = []
        for index in range(6):
            columns.append(["acme", "globex", ("corp", "inc")[index % 2]])
            columns.append(["energy", "utilities", ("power", "grid")[index % 2]])
        rows = [["acme", "energy"]] * 8
        without = WebTableEmbeddingModel(dim=4, min_count=1).fit(columns)
        with_rows = WebTableEmbeddingModel(dim=4, min_count=1).fit(
            columns, rows, row_weight=1.0
        )
        assert with_rows.similarity("acme", "energy") > without.similarity(
            "acme", "energy"
        )


class TestPretrainedModel:
    """Checks against the shared session model (trained on the web corpus)."""

    def test_company_tokens_cluster(self, webtable_model):
        same = webtable_model.similarity("acme", "globex" if webtable_model.in_vocabulary("globex") else "zenith")
        cross = webtable_model.similarity("acme", "chicago")
        assert same > cross

    def test_city_tokens_cluster(self, webtable_model):
        same = webtable_model.similarity("chicago", "boston")
        cross = webtable_model.similarity("chicago", "acme")
        assert same > cross

    def test_common_tokens_in_vocabulary(self, webtable_model):
        for token in ("acme", "corp", "chicago", "energy"):
            assert webtable_model.in_vocabulary(token), token
