"""Tests for repro.embedding.numeric."""

from __future__ import annotations

import numpy as np
import pytest

from repro.embedding.numeric import (
    NUMERIC_PROFILE_DIM,
    numeric_profile_vector,
    project_profile,
)
from repro.storage.column import Column
from repro.storage.types import DataType


class TestNumericProfileVector:
    def test_shape_and_norm(self):
        profile = numeric_profile_vector(Column("x", [1.0, 2.0, 3.0]))
        assert profile.shape == (NUMERIC_PROFILE_DIM,)
        assert np.linalg.norm(profile) == pytest.approx(1.0)

    def test_non_numeric_zero(self):
        assert not np.any(numeric_profile_vector(Column("x", ["a"])))

    def test_empty_numeric_zero(self):
        column = Column("x", [], DataType.FLOAT)
        assert not np.any(numeric_profile_vector(column))

    def test_deterministic(self):
        column = Column("x", [5, 1, 3])
        assert np.allclose(numeric_profile_vector(column), numeric_profile_vector(column))

    def test_similar_distributions_close(self):
        a = numeric_profile_vector(Column("x", list(range(100))))
        b = numeric_profile_vector(Column("y", list(range(2, 102))))
        c = numeric_profile_vector(Column("z", [x * 1e6 for x in range(100)]))
        assert float(a @ b) > float(a @ c)

    def test_scale_robust(self):
        """Log compression keeps huge-scale columns finite and comparable."""
        profile = numeric_profile_vector(Column("x", [1e12, 2e12, -5e11]))
        assert np.isfinite(profile).all()

    def test_integrality_feature_differs(self):
        ints = numeric_profile_vector(Column("x", [1, 2, 3, 4]))
        floats = numeric_profile_vector(Column("y", [1.5, 2.25, 3.75, 4.125]))
        assert not np.allclose(ints, floats)


class TestProjectProfile:
    def test_shape(self):
        profile = numeric_profile_vector(Column("x", [1, 2, 3]))
        assert project_profile(profile, 64).shape == (64,)

    def test_unit_norm(self):
        profile = numeric_profile_vector(Column("x", [1, 2, 3]))
        assert np.linalg.norm(project_profile(profile, 64)) == pytest.approx(1.0)

    def test_deterministic_per_dim(self):
        profile = numeric_profile_vector(Column("x", [1, 2, 3]))
        assert np.allclose(project_profile(profile, 32), project_profile(profile, 32))

    def test_cosine_roughly_preserved(self):
        a = numeric_profile_vector(Column("x", list(range(50))))
        b = numeric_profile_vector(Column("y", list(range(5, 55))))
        original = float(a @ b)
        projected = float(project_profile(a, 64) @ project_profile(b, 64))
        assert abs(original - projected) < 0.35
