"""Tests for repro._util: stable hashing, RNG derivation, timers, formatting."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro._util import (
    DegradationPolicy,
    Stopwatch,
    Timer,
    chunked,
    format_bytes,
    format_seconds,
    mean_or_zero,
    rng_for,
    stable_hash64,
    stable_uint64,
)


class TestStableHash:
    def test_deterministic_across_calls(self):
        assert stable_hash64("warpgate") == stable_hash64("warpgate")

    def test_different_inputs_differ(self):
        assert stable_hash64("left") != stable_hash64("right")

    def test_salt_changes_value(self):
        assert stable_hash64("x", salt="a") != stable_hash64("x", salt="b")

    def test_bytes_and_str_agree(self):
        assert stable_hash64("abc") == stable_hash64(b"abc")

    def test_signed_range(self):
        value = stable_hash64("anything")
        assert -(2**63) <= value < 2**63

    def test_unsigned_range(self):
        value = stable_uint64("anything")
        assert 0 <= value < 2**64

    def test_empty_string_hashable(self):
        assert isinstance(stable_uint64(""), int)

    @given(st.text(max_size=50))
    def test_uint64_always_in_range(self, text):
        assert 0 <= stable_uint64(text) < 2**64

    @given(st.text(max_size=50), st.text(max_size=50))
    def test_collision_free_on_simple_pairs(self, a, b):
        # Not a guarantee in general, but 64-bit collisions on short text
        # would indicate a broken digest extraction.
        if a != b:
            assert stable_uint64(a) != stable_uint64(b) or True  # smoke only
            assert stable_uint64(a, salt="s") == stable_uint64(a, salt="s")


class TestRngFor:
    def test_same_parts_same_stream(self):
        a = rng_for("x", 1).standard_normal(4)
        b = rng_for("x", 1).standard_normal(4)
        assert np.allclose(a, b)

    def test_different_parts_different_stream(self):
        a = rng_for("x", 1).standard_normal(4)
        b = rng_for("x", 2).standard_normal(4)
        assert not np.allclose(a, b)

    def test_part_order_matters(self):
        a = rng_for("a", "b").standard_normal(4)
        b = rng_for("b", "a").standard_normal(4)
        assert not np.allclose(a, b)

    def test_base_seed_changes_stream(self):
        a = rng_for("x", base_seed=0).standard_normal(4)
        b = rng_for("x", base_seed=1).standard_normal(4)
        assert not np.allclose(a, b)


class TestStopwatch:
    def test_measure_accumulates(self):
        watch = Stopwatch()
        with watch.measure("load"):
            pass
        with watch.measure("load"):
            pass
        assert watch.get("load") >= 0.0
        assert watch.total == pytest.approx(sum(watch.as_dict().values()))

    def test_add_direct(self):
        watch = Stopwatch()
        watch.add("embed", 1.5)
        watch.add("embed", 0.5)
        assert watch.get("embed") == pytest.approx(2.0)

    def test_unknown_split_is_zero(self):
        assert Stopwatch().get("nope") == 0.0

    def test_reset(self):
        watch = Stopwatch()
        watch.add("x", 1.0)
        watch.reset()
        assert watch.total == 0.0


class TestTimer:
    def test_elapsed_non_negative(self):
        with Timer() as timer:
            sum(range(100))
        assert timer.elapsed >= 0.0


class TestChunked:
    def test_even_split(self):
        assert list(chunked([1, 2, 3, 4], 2)) == [[1, 2], [3, 4]]

    def test_ragged_tail(self):
        assert list(chunked([1, 2, 3], 2)) == [[1, 2], [3]]

    def test_chunk_bigger_than_input(self):
        assert list(chunked([1], 10)) == [[1]]

    def test_empty_input(self):
        assert list(chunked([], 3)) == []

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            list(chunked([1], 0))

    @given(st.lists(st.integers(), max_size=50), st.integers(1, 10))
    def test_concatenation_identity(self, items, size):
        flattened = [x for chunk in chunked(items, size) for x in chunk]
        assert flattened == items


class TestFormatting:
    def test_format_bytes_small(self):
        assert format_bytes(512) == "512 B"

    def test_format_bytes_kb(self):
        assert format_bytes(2048) == "2.0 KB"

    def test_format_bytes_mb(self):
        assert "MB" in format_bytes(5 * 1024**2)

    def test_format_seconds_micro(self):
        assert "us" in format_seconds(5e-5)

    def test_format_seconds_milli(self):
        assert "ms" in format_seconds(0.005)

    def test_format_seconds_seconds(self):
        assert format_seconds(2.5) == "2.50 s"

    def test_format_seconds_minutes(self):
        assert "min" in format_seconds(300)

    def test_format_seconds_negative(self):
        assert format_seconds(-0.005).startswith("-")


class TestMeanOrZero:
    def test_empty(self):
        assert mean_or_zero([]) == 0.0

    def test_mean(self):
        assert mean_or_zero([1.0, 2.0, 3.0]) == pytest.approx(2.0)


class _FakeClock:
    """Injectable monotonic clock for deterministic policy tests."""

    def __init__(self) -> None:
        self.now = 1000.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestDegradationPolicy:
    def _policy(self, **overrides):
        clock = _FakeClock()
        defaults = dict(shed_threshold=4, window_s=10.0, recovery_s=5.0)
        defaults.update(overrides)
        return DegradationPolicy(clock=clock, **defaults), clock

    def test_starts_normal(self):
        policy, _ = self._policy()
        assert policy.tier() == DegradationPolicy.TIER_NORMAL
        assert not policy.is_degraded
        assert policy.max_hops_cap() is None
        assert policy.rerank_factor_for(8) == 8

    def test_escalates_at_threshold(self):
        policy, _ = self._policy()
        for _ in range(3):
            policy.record_shed()
        assert policy.tier() == DegradationPolicy.TIER_NORMAL
        policy.record_shed()  # 4th shed inside the window
        assert policy.tier() == DegradationPolicy.TIER_DEGRADED

    def test_escalates_to_critical_at_double_threshold(self):
        policy, _ = self._policy()
        for _ in range(8):
            policy.record_shed()
        assert policy.tier() == DegradationPolicy.TIER_CRITICAL

    def test_degraded_downshifts_work(self):
        policy, _ = self._policy()
        for _ in range(4):
            policy.record_shed()
        assert policy.rerank_factor_for(8) == 4  # halved at tier 1
        assert policy.rerank_factor_for(1) == 1  # never below the floor
        assert policy.max_hops_cap() == 1

    def test_critical_drops_rerank_to_floor(self):
        policy, _ = self._policy()
        for _ in range(8):
            policy.record_shed()
        assert policy.rerank_factor_for(8) == 1
        assert policy.max_hops_cap() == 1

    def test_sheds_outside_window_are_forgotten(self):
        policy, clock = self._policy()
        for _ in range(3):
            policy.record_shed()
        clock.advance(11.0)  # past window_s
        policy.record_shed()  # only 1 shed in the live window
        assert policy.tier() == DegradationPolicy.TIER_NORMAL

    def test_recovery_is_one_tier_per_quiet_period(self):
        policy, clock = self._policy()
        for _ in range(8):
            policy.record_shed()
        assert policy.tier() == DegradationPolicy.TIER_CRITICAL
        # Sheds age out of the window, but recovery is hysteretic: one
        # step down per recovery_s of quiet, never straight to normal.
        clock.advance(10.5)  # window empty, first quiet period elapsed
        assert policy.tier() == DegradationPolicy.TIER_DEGRADED
        assert policy.tier() == DegradationPolicy.TIER_DEGRADED  # holds
        clock.advance(5.0)  # second full quiet period
        assert policy.tier() == DegradationPolicy.TIER_NORMAL

    def test_recovery_without_new_events(self):
        """tier() itself evaluates pending transitions — recovery must
        not require another shed to be observed."""
        policy, clock = self._policy()
        for _ in range(4):
            policy.record_shed()
        clock.advance(30.0)
        assert policy.tier() == DegradationPolicy.TIER_NORMAL

    def test_shed_during_recovery_resets_quiet_clock(self):
        policy, clock = self._policy()
        for _ in range(4):
            policy.record_shed()
        clock.advance(9.0)  # almost recovered...
        policy.record_shed()  # ...dirtied: the quiet clock restarts here
        clock.advance(2.0)  # original sheds aged out; 2s quiet < recovery_s
        assert policy.tier() == DegradationPolicy.TIER_DEGRADED
        clock.advance(3.5)  # 5.5s since the late shed >= recovery_s
        assert policy.tier() == DegradationPolicy.TIER_NORMAL

    def test_snapshot_shape(self):
        policy, _ = self._policy()
        policy.record_shed()
        snap = policy.snapshot()
        assert snap["tier"] == 0
        assert snap["recent_sheds"] == 1
        assert snap["shed_total"] == 1
        assert snap["transitions"] == 0
        assert snap["shed_threshold"] == 4
        assert snap["window_s"] == 10.0
        assert snap["recovery_s"] == 5.0

    def test_transitions_counted_both_directions(self):
        policy, clock = self._policy()
        for _ in range(8):
            policy.record_shed()
        # Even a 30s silence steps down only ONE tier per evaluation
        # period — the step itself consumes the quiet stretch.
        clock.advance(30.0)
        assert policy.tier() == DegradationPolicy.TIER_DEGRADED
        clock.advance(5.0)
        assert policy.tier() == DegradationPolicy.TIER_NORMAL
        # 0->1 at the 4th shed, 1->2 at the 8th, then two step-downs.
        assert policy.snapshot()["transitions"] == 4
        assert policy.snapshot()["shed_total"] == 8

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            DegradationPolicy(shed_threshold=0)
        with pytest.raises(ValueError):
            DegradationPolicy(window_s=0.0)
        with pytest.raises(ValueError):
            DegradationPolicy(recovery_s=-1.0)
