"""Tests for repro._util: stable hashing, RNG derivation, timers, formatting."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro._util import (
    Stopwatch,
    Timer,
    chunked,
    format_bytes,
    format_seconds,
    mean_or_zero,
    rng_for,
    stable_hash64,
    stable_uint64,
)


class TestStableHash:
    def test_deterministic_across_calls(self):
        assert stable_hash64("warpgate") == stable_hash64("warpgate")

    def test_different_inputs_differ(self):
        assert stable_hash64("left") != stable_hash64("right")

    def test_salt_changes_value(self):
        assert stable_hash64("x", salt="a") != stable_hash64("x", salt="b")

    def test_bytes_and_str_agree(self):
        assert stable_hash64("abc") == stable_hash64(b"abc")

    def test_signed_range(self):
        value = stable_hash64("anything")
        assert -(2**63) <= value < 2**63

    def test_unsigned_range(self):
        value = stable_uint64("anything")
        assert 0 <= value < 2**64

    def test_empty_string_hashable(self):
        assert isinstance(stable_uint64(""), int)

    @given(st.text(max_size=50))
    def test_uint64_always_in_range(self, text):
        assert 0 <= stable_uint64(text) < 2**64

    @given(st.text(max_size=50), st.text(max_size=50))
    def test_collision_free_on_simple_pairs(self, a, b):
        # Not a guarantee in general, but 64-bit collisions on short text
        # would indicate a broken digest extraction.
        if a != b:
            assert stable_uint64(a) != stable_uint64(b) or True  # smoke only
            assert stable_uint64(a, salt="s") == stable_uint64(a, salt="s")


class TestRngFor:
    def test_same_parts_same_stream(self):
        a = rng_for("x", 1).standard_normal(4)
        b = rng_for("x", 1).standard_normal(4)
        assert np.allclose(a, b)

    def test_different_parts_different_stream(self):
        a = rng_for("x", 1).standard_normal(4)
        b = rng_for("x", 2).standard_normal(4)
        assert not np.allclose(a, b)

    def test_part_order_matters(self):
        a = rng_for("a", "b").standard_normal(4)
        b = rng_for("b", "a").standard_normal(4)
        assert not np.allclose(a, b)

    def test_base_seed_changes_stream(self):
        a = rng_for("x", base_seed=0).standard_normal(4)
        b = rng_for("x", base_seed=1).standard_normal(4)
        assert not np.allclose(a, b)


class TestStopwatch:
    def test_measure_accumulates(self):
        watch = Stopwatch()
        with watch.measure("load"):
            pass
        with watch.measure("load"):
            pass
        assert watch.get("load") >= 0.0
        assert watch.total == pytest.approx(sum(watch.as_dict().values()))

    def test_add_direct(self):
        watch = Stopwatch()
        watch.add("embed", 1.5)
        watch.add("embed", 0.5)
        assert watch.get("embed") == pytest.approx(2.0)

    def test_unknown_split_is_zero(self):
        assert Stopwatch().get("nope") == 0.0

    def test_reset(self):
        watch = Stopwatch()
        watch.add("x", 1.0)
        watch.reset()
        assert watch.total == 0.0


class TestTimer:
    def test_elapsed_non_negative(self):
        with Timer() as timer:
            sum(range(100))
        assert timer.elapsed >= 0.0


class TestChunked:
    def test_even_split(self):
        assert list(chunked([1, 2, 3, 4], 2)) == [[1, 2], [3, 4]]

    def test_ragged_tail(self):
        assert list(chunked([1, 2, 3], 2)) == [[1, 2], [3]]

    def test_chunk_bigger_than_input(self):
        assert list(chunked([1], 10)) == [[1]]

    def test_empty_input(self):
        assert list(chunked([], 3)) == []

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            list(chunked([1], 0))

    @given(st.lists(st.integers(), max_size=50), st.integers(1, 10))
    def test_concatenation_identity(self, items, size):
        flattened = [x for chunk in chunked(items, size) for x in chunk]
        assert flattened == items


class TestFormatting:
    def test_format_bytes_small(self):
        assert format_bytes(512) == "512 B"

    def test_format_bytes_kb(self):
        assert format_bytes(2048) == "2.0 KB"

    def test_format_bytes_mb(self):
        assert "MB" in format_bytes(5 * 1024**2)

    def test_format_seconds_micro(self):
        assert "us" in format_seconds(5e-5)

    def test_format_seconds_milli(self):
        assert "ms" in format_seconds(0.005)

    def test_format_seconds_seconds(self):
        assert format_seconds(2.5) == "2.50 s"

    def test_format_seconds_minutes(self):
        assert "min" in format_seconds(300)

    def test_format_seconds_negative(self):
        assert format_seconds(-0.005).startswith("-")


class TestMeanOrZero:
    def test_empty(self):
        assert mean_or_zero([]) == 0.0

    def test_mean(self):
        assert mean_or_zero([1.0, 2.0, 3.0]) == pytest.approx(2.0)
