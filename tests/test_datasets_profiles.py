"""Tests for testbed profile metadata and paper-row helpers."""

from __future__ import annotations

import pytest

from repro.datasets.nextiajd import TESTBED_PROFILES, paper_summary_rows


class TestProfiles:
    def test_names(self):
        assert TESTBED_PROFILES["S"].name == "testbedS"

    def test_row_scale_note(self):
        """XS stays at paper scale; S/M/L are scaled down substantially."""
        assert TESTBED_PROFILES["XS"].row_scale_note == pytest.approx(1.0, abs=0.1)
        for key in ("S", "M", "L"):
            assert 0.0 < TESTBED_PROFILES[key].row_scale_note < 0.05

    def test_published_ordering_preserved(self):
        """Paper row counts grow XS < S < M < L; our defaults track that."""
        keys = ["XS", "S", "M", "L"]
        paper = [TESTBED_PROFILES[k].paper_avg_rows for k in keys]
        assert paper == sorted(paper)
        ours = [
            (TESTBED_PROFILES[k].rows_low + TESTBED_PROFILES[k].rows_high) / 2
            for k in ["S", "M", "L"]  # XS is deliberately kept at paper scale
        ]
        assert ours == sorted(ours)

    def test_m_keeps_paper_column_count(self):
        profile = TESTBED_PROFILES["M"]
        generated_columns = profile.n_tables * profile.columns_per_table
        assert generated_columns == pytest.approx(profile.paper_columns, rel=0.02)


class TestPaperSummaryRows:
    def test_one_row_per_testbed(self):
        rows = list(paper_summary_rows())
        assert len(rows) == 4
        assert {row["corpus"] for row in rows} == {
            "testbedXS",
            "testbedS",
            "testbedM",
            "testbedL",
        }

    def test_published_values_carried(self):
        rows = {row["corpus"]: row for row in paper_summary_rows()}
        assert rows["testbedS"]["columns"] == 2_553
        assert rows["testbedM"]["avg_rows"] == 3_175_904
        assert rows["testbedL"]["queries"] == 92
