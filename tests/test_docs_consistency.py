"""Documentation consistency: the docs describe the repository that exists."""

from __future__ import annotations

from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent
README = (ROOT / "README.md").read_text(encoding="utf-8")
DESIGN = (ROOT / "DESIGN.md").read_text(encoding="utf-8")
EXPERIMENTS = (ROOT / "EXPERIMENTS.md").read_text(encoding="utf-8")


class TestDocsExist:
    @pytest.mark.parametrize("name", ["README.md", "DESIGN.md", "EXPERIMENTS.md"])
    def test_present_and_substantial(self, name):
        path = ROOT / name
        assert path.exists()
        assert len(path.read_text(encoding="utf-8")) > 2_000


class TestReadme:
    def test_mentions_every_example(self):
        for example in sorted((ROOT / "examples").glob("*.py")):
            assert example.name in README, f"README does not mention {example.name}"

    def test_mentions_every_benchmark_family(self):
        for bench in sorted((ROOT / "benchmarks").glob("bench_*.py")):
            stem = bench.name
            assert (
                stem in README or "bench_ablation_" in stem or stem in DESIGN
            ), f"neither README nor DESIGN mentions {stem}"

    def test_quickstart_snippet_is_real_api(self):
        assert "from repro import WarpGate, generate_testbed" in README
        # The snippet's names must exist.
        import repro

        assert hasattr(repro, "WarpGate")
        assert hasattr(repro, "generate_testbed")


class TestDesign:
    def test_every_bench_file_in_experiment_index(self):
        for bench in sorted((ROOT / "benchmarks").glob("bench_*.py")):
            assert bench.name in DESIGN, f"DESIGN.md experiment index misses {bench.name}"

    def test_every_source_package_inventoried(self):
        for package in sorted((ROOT / "src" / "repro").iterdir()):
            if package.is_dir() and (package / "__init__.py").exists():
                assert (
                    f"{package.name}/" in DESIGN
                ), f"DESIGN.md inventory misses package {package.name}"

    def test_paper_identity_check_recorded(self):
        assert "arXiv:2212.14155" in DESIGN
        assert "CIDR 2023" in DESIGN


class TestExperiments:
    @pytest.mark.parametrize(
        "anchor",
        [
            "Table 1",
            "Figure 4(a)",
            "Figure 4(b)",
            "Figure 4(c)",
            "Table 2",
            "sample efficiency",
            "BERT comparison",
            "ad-hoc discovery in Sigma",
            "fleet-scale sampling economics",
            "known deviations",
        ],
    )
    def test_every_experiment_recorded(self, anchor):
        assert anchor in EXPERIMENTS

    def test_every_bench_referenced(self):
        for bench in sorted((ROOT / "benchmarks").glob("bench_*.py")):
            if bench.name == "bench_index_micro.py":
                continue  # micro-benches are not a paper experiment
            assert bench.name in EXPERIMENTS, f"EXPERIMENTS.md misses {bench.name}"


class TestPerfDocs:
    """The perf-tracking story: CLI, report, and doc sections stay in sync."""

    def test_readme_documents_bench_command(self):
        assert "python -m repro bench" in README
        assert "BENCH_index.json" in README

    def test_experiments_documents_bench_command(self):
        assert "python -m repro bench" in EXPERIMENTS
        assert "BENCH_index.json" in EXPERIMENTS

    def test_design_has_index_internals_section(self):
        assert "Index internals" in DESIGN
        for anchor in ("VectorArena", "tombstone", "compaction", "search_batch"):
            assert anchor in DESIGN, f"Index internals misses {anchor!r}"

    def test_bench_report_exists_and_validates(self):
        import json

        from repro.eval.perf import BENCH_REPORT_NAME, validate_report

        path = ROOT / BENCH_REPORT_NAME
        assert path.exists(), "run `python -m repro bench` to regenerate"
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert validate_report(payload) == []

    def test_bench_cli_subcommand_exists(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["bench", "--profile", "fast"])
        assert callable(args.handler)


class TestInventoryMatchesModules:
    def test_design_module_listing_is_current(self):
        """Every module named in the DESIGN inventory actually exists."""
        import re

        for match in re.finditer(r"^\s{4}(\w+\.py)\s", DESIGN, flags=re.MULTILINE):
            module_name = match.group(1)
            hits = list((ROOT / "src" / "repro").rglob(module_name))
            assert hits, f"DESIGN.md lists {module_name} but no such module exists"
