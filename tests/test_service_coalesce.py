"""Coalescer correctness: batching changes scheduling, never results.

Three layers of evidence:

* unit tests drive :class:`QueryCoalescer` directly with a controllable
  executor (fast path, batch formation, ``max_batch``, per-request error
  isolation, executor-failure recovery);
* concurrency tests fire barrier-synchronized clients through
  ``search_coalesced`` on every backend variant (lsh / exact / pivot,
  sharded, quantized) and require results identical to the sequential
  reference path;
* a hypothesis churn test interleaves add/drop/refresh mutations with
  coalesced searches and checks every response against the library
  engine's uncached pipeline — which also pins the query cache's
  generation invalidation end to end.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import WarpGateConfig
from repro.errors import DeadlineExceededError
from repro.core.profiles import EmbeddingCache
from repro.core.warpgate import WarpGate
from repro.eval.perf import synthetic_corpus
from repro.service import DiscoveryService, QueryCoalescer, ServiceError
from repro.storage.column import Column
from repro.storage.schema import ColumnRef
from repro.storage.table import Table
from repro.warehouse.catalog import Warehouse
from repro.warehouse.connector import WarehouseConnector

N, DIM, POOL = 400, 32, 24
FLOOR = 0.3

VARIANTS = {
    "lsh": {"search_backend": "lsh"},
    "exact": {"search_backend": "exact"},
    "pivot": {"search_backend": "pivot"},
    "lsh-sharded": {"search_backend": "lsh", "n_shards": 4},
    "exact-sharded": {"search_backend": "exact", "n_shards": 3},
    "exact-quantized": {"search_backend": "exact", "quantize": True},
}


def build_service(**overrides) -> tuple[DiscoveryService, list[ColumnRef]]:
    """A service over a synthetic pre-embedded index + cached query refs."""
    cache = EmbeddingCache()
    config = WarpGateConfig(model_name="hashing", dim=DIM, **overrides)
    engine = WarpGate(config, cache=cache)
    corpus = synthetic_corpus(N, DIM)
    refs = [ColumnRef("db", f"t{i // 16}", f"c{i % 16}") for i in range(N)]
    engine._index.bulk_load(refs, corpus)
    engine._indexed = True
    engine.rebuild_index()
    rng = np.random.default_rng(7)
    queries = []
    for position in range(POOL):
        vector = corpus[rng.integers(0, N)] + 0.15 * rng.standard_normal(DIM)
        query = ColumnRef("db", "queries", f"q{position}")
        cache.put(query, vector / np.linalg.norm(vector))
        queries.append(query)
    return engine, queries


def as_pairs(response) -> list[tuple[str, float]]:
    return [(str(candidate.ref), candidate.score) for candidate in response.candidates]


class TestQueryCoalescerUnit:
    def test_sequential_submits_take_the_fast_path(self):
        coalescer = QueryCoalescer(lambda batch: [f"ok:{r}" for r in batch])
        assert coalescer.submit("a") == "ok:a"
        assert coalescer.submit("b") == "ok:b"
        stats = coalescer.stats()
        assert stats["requests"] == 2
        assert stats["fastpath"] == 2
        assert stats["batches"] == 0

    def test_concurrent_submits_coalesce_into_batches(self):
        release = threading.Event()
        sizes: list[int] = []

        def execute(batch):
            release.wait(5)
            sizes.append(len(batch))
            return [f"ok:{r}" for r in batch]

        coalescer = QueryCoalescer(execute, max_batch=8, max_wait_us=0)
        with ThreadPoolExecutor(max_workers=9) as pool:
            futures = [pool.submit(coalescer.submit, f"r{i}") for i in range(9)]
            # The first submit is mid-fast-path (blocked on `release`);
            # the other eight are queued behind it.
            release.set()
            results = [future.result(timeout=10) for future in futures]
        assert sorted(results) == sorted(f"ok:r{i}" for i in range(9))
        stats = coalescer.stats()
        assert stats["requests"] == 9
        assert stats["coalesced_requests"] + stats["fastpath"] == 9
        assert stats["batches"] >= 1
        assert max(sizes) > 1  # real coalescing happened
        assert max(sizes) <= 8  # and max_batch held

    def test_fast_path_returns_without_serving_the_backlog(self):
        """The fast-path thread hands the queue off; it never drains it.

        The batch executor blocks on an event that is only set *after*
        the fast-path submit has returned — if the fast-path thread were
        responsible for draining the followers queued behind it (the
        starvation hazard), this test would deadlock.
        """
        first_running = threading.Event()
        release_first = threading.Event()
        release_batches = threading.Event()

        def execute(batch):
            if batch == ["first"]:
                first_running.set()
                release_first.wait(5)
            else:
                release_batches.wait(5)
            return [f"ok:{request}" for request in batch]

        coalescer = QueryCoalescer(execute, max_wait_us=0)
        with ThreadPoolExecutor(max_workers=5) as pool:
            fast = pool.submit(coalescer.submit, "first")
            assert first_running.wait(5)
            followers = [pool.submit(coalescer.submit, f"f{i}") for i in range(4)]
            release_first.set()
            # The fast-path result arrives while the followers' batches
            # are still blocked — proof it did not stay to serve them.
            assert fast.result(timeout=5) == "ok:first"
            assert not any(future.done() for future in followers)
            release_batches.set()
            assert sorted(f.result(timeout=5) for f in followers) == sorted(
                f"ok:f{i}" for i in range(4)
            )

    def test_per_request_errors_are_isolated(self):
        def execute(batch):
            return [
                ValueError(request) if request == "bad" else f"ok:{request}"
                for request in batch
            ]

        coalescer = QueryCoalescer(execute)
        assert coalescer.submit("good") == "ok:good"
        with pytest.raises(ValueError):
            coalescer.submit("bad")
        # The coalescer stays serviceable after an error outcome.
        assert coalescer.submit("good") == "ok:good"

    def test_executor_crash_fails_batch_but_not_coalescer(self):
        crash = {"armed": True}

        def execute(batch):
            if crash["armed"]:
                crash["armed"] = False
                raise RuntimeError("executor exploded")
            return [f"ok:{r}" for r in batch]

        coalescer = QueryCoalescer(execute)
        with pytest.raises(RuntimeError):
            coalescer.submit("first")
        assert coalescer.submit("second") == "ok:second"

    def test_validation(self):
        with pytest.raises(ValueError):
            QueryCoalescer(lambda b: b, max_batch=0)
        with pytest.raises(ValueError):
            QueryCoalescer(lambda b: b, max_wait_us=-1)


class TestCoalescedParity:
    @pytest.mark.parametrize("variant", sorted(VARIANTS))
    def test_concurrent_coalesced_equals_sequential_search(self, variant):
        # Result cache off: every coalesced request must reach the real
        # batched probe, not be satisfied by the reference pass's entries.
        engine, queries = build_service(**VARIANTS[variant], query_cache_size=0)
        service = DiscoveryService(engine=engine)
        work = queries * 4
        # Sequential reference through the plain (uncoalesced) path on a
        # twin service sharing the same engine state via fresh probes.
        reference = {
            query: as_pairs(service.search(query, 5, threshold=FLOOR))
            for query in queries
        }
        barrier = threading.Barrier(16)

        def client(chunk):
            barrier.wait(timeout=10)
            return [
                (query, as_pairs(service.search_coalesced(query, 5, threshold=FLOOR)))
                for query in chunk
            ]

        chunks = [work[position::16] for position in range(16)]
        with ThreadPoolExecutor(max_workers=16) as pool:
            outcomes = [
                entry for future in [
                    pool.submit(client, chunk) for chunk in chunks
                ] for entry in future.result(timeout=60)
            ]
        assert len(outcomes) == len(work)
        for query, got in outcomes:
            want = reference[query]
            assert [ref for ref, _score in got] == [ref for ref, _score in want]
            # Batched probes score via one GEMM, single probes via a
            # gathered matvec — equal to float32 precision (the index
            # layer's documented batch contract).
            for (_r1, got_score), (_r2, want_score) in zip(got, want):
                assert got_score == pytest.approx(want_score, abs=1e-6)

    def test_unknown_query_fails_alone_in_a_concurrent_batch(self):
        engine, queries = build_service()
        service = DiscoveryService(engine=engine)
        ghost = ColumnRef("db", "ghost", "col")
        barrier = threading.Barrier(9)

        def good(query):
            barrier.wait(timeout=10)
            return service.search_coalesced(query, 5, threshold=FLOOR)

        def bad():
            barrier.wait(timeout=10)
            with pytest.raises(ServiceError) as excinfo:
                service.search_coalesced(ghost, 5, threshold=FLOOR)
            return excinfo.value.code

        with ThreadPoolExecutor(max_workers=9) as pool:
            good_futures = [pool.submit(good, query) for query in queries[:8]]
            bad_future = pool.submit(bad)
            assert bad_future.result(timeout=30) in ("not_found", "not_indexed")
            for future in good_futures:
                assert len(future.result(timeout=30).candidates) > 0


def tiny_table(name: str, salt: int) -> Table:
    """A small, deterministic table whose text column actually embeds."""
    words = ["alpha", "beta", "gamma", "delta", "omega", "sigma"]
    values = [f"{words[(salt + i) % 6]} {words[(salt + 2 * i) % 6]}" for i in range(4)]
    return Table(
        name,
        [
            Column("label", values),
            Column("amount", [salt + i for i in range(4)]),
        ],
    )


@settings(max_examples=40, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.sampled_from(["add", "drop", "refresh", "search"]),
                  st.integers(min_value=0, max_value=3)),
        min_size=1,
        max_size=8,
    )
)
def test_coalesced_search_matches_engine_under_churn(ops):
    """Interleaved mutations never desynchronize the coalesced path.

    After every operation, a coalesced search must equal the library
    engine's own (uncached) pipeline — if the query cache ever served a
    result from before the latest mutation, or the coalescer reordered
    semantics, the two would diverge.
    """
    warehouse = Warehouse("churn")
    warehouse.add_table("db", tiny_table("base", 0))
    config = WarpGateConfig(model_name="hashing", dim=16, threshold=0.0)
    service = DiscoveryService(config)
    service.open(WarehouseConnector(warehouse))
    query = ColumnRef("db", "base", "label")

    def check():
        got = service.search_coalesced(query, 5)
        want = service.engine.search(query, 5)
        assert [str(c.ref) for c in got.candidates] == [
            str(c.ref) for c in want.candidates
        ]
        for mine, theirs in zip(got.candidates, want.candidates):
            assert mine.score == pytest.approx(theirs.score, abs=1e-6)

    for action, slot in ops:
        name = f"table_{slot}"
        if action == "add":
            service.add_table("db", tiny_table(name, slot + 1))
        elif action == "drop":
            if any(
                ref.table_key == ("db", name) for ref in service.engine.indexed_refs
            ):
                service.drop_table("db", name)
        elif action == "refresh":
            service.refresh_column(query)
        check()


class TestCoalescerDeadlines:
    """Deadline enforcement at the coalescer's three boundaries."""

    def test_pre_expired_submit_raises_without_executing(self):
        executed = []

        def execute(batch):
            executed.append(batch)
            return list(batch)

        coalescer = QueryCoalescer(
            execute, deadline_of=lambda request: time.monotonic() - 0.1
        )
        with pytest.raises(DeadlineExceededError) as info:
            coalescer.submit("doomed")
        assert info.value.overrun_s >= 0.1
        assert executed == []  # never reached the executor
        assert coalescer.stats()["requests"] == 0

    def test_no_deadline_requests_unaffected(self):
        coalescer = QueryCoalescer(
            lambda batch: [f"ok:{r}" for r in batch],
            deadline_of=lambda request: None,
        )
        assert coalescer.submit("a") == "ok:a"
        stats = coalescer.stats()
        assert stats["urgent"] == 0 and stats["expired"] == 0

    def test_tight_budget_takes_urgent_path_while_busy(self):
        """A near-deadline arrival during an in-flight execution runs
        alone immediately instead of queueing behind the batch."""
        release = threading.Event()
        started = threading.Event()

        def execute(batch):
            return [f"batched:{r}" for r in batch]

        def execute_one(request):
            # The fast path routes through execute_one; blocking "slow"
            # here keeps the coalescer owned while "urgent" arrives.
            if request == "slow":
                started.set()
                release.wait(timeout=5)
            return f"solo:{request}"

        deadlines = {"urgent": time.monotonic() + 10.0}

        def deadline_of(request):
            # Re-anchor the urgent request's deadline lazily so the
            # remaining budget is tiny at decision time, generous before.
            if request == "urgent":
                return time.monotonic() + 100e-6
            return deadlines.get(request)

        coalescer = QueryCoalescer(
            execute,
            execute_one=execute_one,
            max_wait_us=5_000,
            deadline_of=deadline_of,
        )
        with ThreadPoolExecutor(max_workers=2) as pool:
            slow = pool.submit(coalescer.submit, "slow")  # fast path, blocks
            assert started.wait(timeout=5)
            # Budget (100us) < wait window (5000us): must not queue.
            result = coalescer.submit("urgent")
            assert result == "solo:urgent"
            assert not slow.done()  # returned while the batch still ran
            release.set()
            assert slow.result(timeout=5) == "solo:slow"
        assert coalescer.stats()["urgent"] == 1

    def test_expired_in_queue_resolved_without_executor(self):
        """An entry whose deadline passes while it waits in the queue is
        answered with the deadline error at batch-snap time; the
        executor never sees it."""
        release = threading.Event()
        started = threading.Event()
        seen: list[object] = []

        def execute(batch):
            seen.extend(batch)
            started.set()
            release.wait(timeout=5)
            return list(batch)

        deadlines = {"short": 0.15, "long": 30.0}
        anchors: dict[object, float] = {}

        def deadline_of(request):
            # Anchor each request's absolute deadline at first sight.
            if request not in anchors:
                anchors[request] = time.monotonic() + deadlines[request]
            return anchors[request]

        coalescer = QueryCoalescer(execute, deadline_of=deadline_of)
        with ThreadPoolExecutor(max_workers=3) as pool:
            blocker = pool.submit(coalescer.submit, "long")  # fast path
            assert started.wait(timeout=5)
            doomed = pool.submit(coalescer.submit, "short")  # queues
            time.sleep(0.3)  # "short" expires while queued
            release.set()
            blocker.result(timeout=5)
            with pytest.raises(DeadlineExceededError):
                doomed.result(timeout=5)
        assert "short" not in seen
        stats = coalescer.stats()
        assert stats["expired"] == 1
        assert stats["batches"] == 0  # the snapped batch was all-expired
