"""Tests for repro.warehouse.connector: metering, budgets, latency model."""

from __future__ import annotations

import pytest

from repro.errors import ScanBudgetExceededError
from repro.storage.schema import ColumnRef
from repro.warehouse.connector import WarehouseConnector
from repro.warehouse.sampling import HeadSampler


class TestScanColumn:
    def test_full_scan(self, toy_connector):
        column, receipt = toy_connector.scan_column(ColumnRef("db", "customers", "company"))
        assert len(column) == 5
        assert receipt.rows_fetched == 5
        assert receipt.rows_total == 5
        assert not receipt.sampled
        assert receipt.scanned_bytes > 0

    def test_sampled_scan_meters_fewer_bytes(self, toy_connector):
        ref = ColumnRef("db", "customers", "company")
        full, full_receipt = toy_connector.scan_column(ref)
        sampled, sampled_receipt = toy_connector.scan_column(
            ref, sampler=HeadSampler(2)
        )
        assert len(sampled) == 2
        assert sampled_receipt.sampled
        assert sampled_receipt.scanned_bytes < full_receipt.scanned_bytes

    def test_simulated_latency_positive(self, toy_connector):
        _, receipt = toy_connector.scan_column(ColumnRef("db", "customers", "id"))
        assert receipt.simulated_seconds >= toy_connector.base_latency_s

    def test_stats_accumulate(self, toy_connector):
        toy_connector.scan_column(ColumnRef("db", "customers", "id"))
        toy_connector.scan_column(ColumnRef("db", "customers", "company"))
        assert toy_connector.stats.scan_count == 2
        assert toy_connector.stats.rows_fetched == 10
        assert len(toy_connector.receipts) == 2

    def test_meter_charges(self, toy_connector):
        toy_connector.scan_column(ColumnRef("db", "customers", "company"))
        assert toy_connector.meter.charged_dollars > 0
        assert toy_connector.meter.scan_count == 1


class TestScanTable:
    def test_full_table(self, toy_connector):
        table, receipt = toy_connector.scan_table("db", "customers")
        assert table.row_count == 5
        assert receipt.rows_fetched == 5

    def test_sampled_table_is_rectangular(self, toy_connector):
        table, receipt = toy_connector.scan_table(
            "db", "customers", sampler=HeadSampler(3)
        )
        assert table.row_count == 3
        assert receipt.sampled
        assert all(len(column) == 3 for column in table.columns)


class TestBudget:
    def test_budget_enforced(self, toy_warehouse):
        connector = WarehouseConnector(toy_warehouse, scan_budget_bytes=10)
        with pytest.raises(ScanBudgetExceededError):
            connector.scan_column(ColumnRef("db", "customers", "company"))

    def test_budget_allows_within(self, toy_warehouse):
        connector = WarehouseConnector(toy_warehouse, scan_budget_bytes=10_000_000)
        connector.scan_column(ColumnRef("db", "customers", "company"))

    def test_negative_budget_rejected(self, toy_warehouse):
        with pytest.raises(ValueError):
            WarehouseConnector(toy_warehouse, scan_budget_bytes=-1)

    def test_zero_bandwidth_rejected(self, toy_warehouse):
        with pytest.raises(ValueError):
            WarehouseConnector(toy_warehouse, bandwidth_bytes_per_s=0)


class TestMetadata:
    def test_peek_schema_is_free(self, toy_connector):
        names = toy_connector.peek_schema("db", "customers")
        assert names == ("id", "company", "amount")
        assert toy_connector.stats.scan_count == 0

    def test_reset_metering(self, toy_connector):
        toy_connector.scan_column(ColumnRef("db", "customers", "id"))
        toy_connector.reset_metering()
        assert toy_connector.stats.scan_count == 0
        assert toy_connector.meter.charged_dollars == 0.0
        assert toy_connector.receipts == ()


class TestLatencyModel:
    def test_latency_grows_with_bytes(self, toy_warehouse):
        connector = WarehouseConnector(
            toy_warehouse, base_latency_s=0.0, bandwidth_bytes_per_s=100.0
        )
        _, small = connector.scan_column(ColumnRef("db", "colors", "hex_len"))
        _, large = connector.scan_column(ColumnRef("db", "customers", "company"))
        assert large.simulated_seconds > small.simulated_seconds
