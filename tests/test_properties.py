"""Cross-cutting property-based tests on system invariants.

These hypothesis suites pin the relationships *between* components: LSH
against exact search, MinHash against true Jaccard, sampling against
statistics, the encoder against its own symmetries.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._util import rng_for
from repro.embedding.encoder import ColumnEncoder
from repro.embedding.hashing import HashingEmbeddingModel
from repro.index.exact import ExactCosineIndex
from repro.index.lsh import SimHashLSHIndex
from repro.index.minhash import MinHashSignature
from repro.index.pivot import PivotFilterIndex
from repro.index.simhash import SimHashFamily
from repro.storage.column import Column
from repro.text.similarity import containment, jaccard

value_lists = st.lists(
    st.text(
        alphabet=st.characters(whitelist_categories=("Ll", "Nd")),
        min_size=1,
        max_size=10,
    ),
    min_size=1,
    max_size=30,
)


class TestLshVsExact:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10_000))
    def test_pivot_filter_equals_exact(self, seed):
        """The pivot filter never changes thresholded search results."""
        dim = 16
        rng = rng_for("prop-pivot", seed)
        matrix = rng.standard_normal((50, dim))
        matrix /= np.linalg.norm(matrix, axis=1, keepdims=True)
        exact = ExactCosineIndex(dim)
        pivot = PivotFilterIndex(dim, n_pivots=5, threshold=0.2)
        for position in range(50):
            exact.add(position, matrix[position])
            pivot.add(position, matrix[position])
        query = matrix[0]
        assert pivot.query(query, 10) == [
            (key, pytest.approx(score))
            for key, score in exact.query(query, 10, threshold=0.2)
        ]

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10_000))
    def test_lsh_results_are_subset_of_exact(self, seed):
        """LSH may miss candidates but never invents or rescores them."""
        dim = 16
        rng = rng_for("prop-lsh", seed)
        matrix = rng.standard_normal((40, dim))
        matrix /= np.linalg.norm(matrix, axis=1, keepdims=True)
        exact = ExactCosineIndex(dim)
        lsh = SimHashLSHIndex(dim, threshold=0.5)
        for position in range(40):
            exact.add(position, matrix[position])
            lsh.add(position, matrix[position])
        query = matrix[0]
        exact_scores = dict(exact.query(query, 40, threshold=0.5))
        for key, score in lsh.query(query, 40):
            assert key in exact_scores
            assert score == pytest.approx(exact_scores[key])


class TestMinHashProperties:
    @settings(max_examples=25, deadline=None)
    @given(value_lists, value_lists)
    def test_estimate_symmetry(self, left, right):
        a = MinHashSignature.of(left)
        b = MinHashSignature.of(right)
        assert a.jaccard_estimate(b) == b.jaccard_estimate(a)

    @settings(max_examples=25, deadline=None)
    @given(value_lists)
    def test_self_similarity(self, values):
        a = MinHashSignature.of(values)
        b = MinHashSignature.of(list(values))
        assert a.jaccard_estimate(b) == 1.0

    @settings(max_examples=15, deadline=None)
    @given(value_lists, value_lists)
    def test_estimate_in_unit_interval(self, left, right):
        estimate = MinHashSignature.of(left).jaccard_estimate(
            MinHashSignature.of(right)
        )
        assert 0.0 <= estimate <= 1.0


class TestSimHashProperties:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10_000))
    def test_signature_invariant_to_positive_scaling(self, seed):
        family = SimHashFamily(8, 64)
        vector = rng_for("prop-scale", seed).standard_normal(8)
        assert np.array_equal(family.signature(vector), family.signature(3.7 * vector))

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10_000))
    def test_closer_vectors_fewer_differing_bits(self, seed):
        from repro.index.simhash import hamming_distance

        family = SimHashFamily(16, 512)
        rng = rng_for("prop-closer", seed)
        base = rng.standard_normal(16)
        near = base + 0.1 * rng.standard_normal(16)
        far = rng.standard_normal(16)
        base_sig = family.signature(base)
        assert hamming_distance(base_sig, family.signature(near)) <= hamming_distance(
            base_sig, family.signature(far)
        ) + 32  # slack: one draw of planes, probabilistic ordering


class TestEncoderProperties:
    @settings(max_examples=20, deadline=None)
    @given(value_lists)
    def test_order_invariance(self, values):
        """Mean aggregation ignores row order."""
        encoder = ColumnEncoder(HashingEmbeddingModel(dim=16))
        forward = encoder.encode(Column("x", list(values)))
        backward = encoder.encode(Column("x", list(reversed(values))))
        assert np.allclose(forward, backward)

    @settings(max_examples=20, deadline=None)
    @given(value_lists)
    def test_output_norm_is_unit_or_zero(self, values):
        encoder = ColumnEncoder(HashingEmbeddingModel(dim=16))
        norm = float(np.linalg.norm(encoder.encode(Column("x", list(values)))))
        assert norm == pytest.approx(1.0) or norm == 0.0


class TestSetSimilarityRelations:
    sets = st.frozensets(st.integers(0, 40), min_size=1, max_size=20)

    @settings(max_examples=50)
    @given(sets, sets)
    def test_jaccard_le_min_containment(self, a, b):
        """J(A,B) <= min(C(A,B), C(B,A)) — the reason Aurum misses skewed joins."""
        j = jaccard(a, b)
        assert j <= containment(a, b) + 1e-12
        assert j <= containment(b, a) + 1e-12

    @settings(max_examples=50)
    @given(sets, sets)
    def test_nested_sets_have_total_containment(self, a, b):
        union = a | b
        assert containment(a, union) == 1.0
        assert containment(b, union) == 1.0
