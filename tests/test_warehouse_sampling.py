"""Tests for repro.warehouse.sampling."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.storage.column import Column
from repro.warehouse.sampling import (
    DistinctSampler,
    HeadSampler,
    ReservoirSampler,
    UniformSampler,
    make_sampler,
)

SAMPLERS = [HeadSampler, UniformSampler, ReservoirSampler, DistinctSampler]


class TestCommonBehaviour:
    @pytest.mark.parametrize("sampler_cls", SAMPLERS)
    def test_effective_size_caps(self, sampler_cls):
        sampler = sampler_cls(10)
        assert sampler.effective_size(5) == 5
        assert sampler.effective_size(100) == 10

    @pytest.mark.parametrize("sampler_cls", SAMPLERS)
    def test_none_means_full(self, sampler_cls):
        sampler = sampler_cls(None)
        column = Column("x", list(range(20)))
        assert sampler.sample_column(column) is column

    @pytest.mark.parametrize("sampler_cls", SAMPLERS)
    def test_sample_size_respected(self, sampler_cls):
        sampler = sampler_cls(7)
        column = Column("x", list(range(50)))
        assert len(sampler.sample_column(column)) == 7

    @pytest.mark.parametrize("sampler_cls", SAMPLERS)
    def test_deterministic_given_seed_key(self, sampler_cls):
        sampler = sampler_cls(5)
        column = Column("x", list(range(40)))
        first = sampler.sample_column(column, seed_key="k").values
        second = sampler.sample_column(column, seed_key="k").values
        assert first == second

    @pytest.mark.parametrize("sampler_cls", [UniformSampler, ReservoirSampler])
    def test_different_seed_keys_differ(self, sampler_cls):
        sampler = sampler_cls(5)
        column = Column("x", list(range(200)))
        first = sampler.sample_column(column, seed_key="a").values
        second = sampler.sample_column(column, seed_key="b").values
        assert first != second

    @pytest.mark.parametrize("sampler_cls", SAMPLERS)
    def test_invalid_size_rejected(self, sampler_cls):
        with pytest.raises(ValueError):
            sampler_cls(0)

    @pytest.mark.parametrize("sampler_cls", SAMPLERS)
    def test_values_come_from_column(self, sampler_cls):
        column = Column("x", list(range(100, 160)))
        sampled = sampler_cls(10).sample_column(column)
        assert set(sampled.values) <= set(column.values)


class TestHeadSampler:
    def test_takes_prefix(self):
        column = Column("x", list(range(10)))
        assert HeadSampler(3).sample_column(column).values == (0, 1, 2)


class TestUniformSampler:
    def test_indices_sorted_distinct(self):
        indices = list(UniformSampler(10).select_indices(100, seed_key="s"))
        assert indices == sorted(set(indices))

    def test_covers_range_statistically(self):
        indices = list(UniformSampler(200).select_indices(1_000, seed_key="s"))
        assert min(indices) < 100
        assert max(indices) > 900


class TestReservoirSampler:
    def test_indices_valid(self):
        indices = list(ReservoirSampler(10).select_indices(50, seed_key="s"))
        assert all(0 <= index < 50 for index in indices)
        assert len(set(indices)) == 10

    def test_uniformity(self):
        """Each index should appear with probability ≈ k/n over many draws."""
        n, k, trials = 30, 10, 300
        counts = np.zeros(n)
        for trial in range(trials):
            for index in ReservoirSampler(k).select_indices(n, seed_key=str(trial)):
                counts[index] += 1
        expected = trials * k / n
        # Loose 3-sigma-ish band: binomial std ~ sqrt(trials * p * (1-p)).
        std = np.sqrt(trials * (k / n) * (1 - k / n))
        assert np.all(np.abs(counts - expected) < 5 * std)


class TestDistinctSampler:
    def test_prefers_unseen_values(self):
        values = [1] * 50 + [2, 3, 4, 5, 6]
        column = Column("x", values)
        sampled = DistinctSampler(5).sample_column(column)
        # All five slots should hold distinct values (there are >= 5 distinct).
        assert len(set(sampled.values)) == 5

    def test_fills_with_repeats_when_needed(self):
        column = Column("x", [1, 1, 1, 1, 1, 1])
        sampled = DistinctSampler(3).sample_column(column)
        assert len(sampled) == 3


class TestFactory:
    @pytest.mark.parametrize("name", ["head", "uniform", "reservoir", "distinct"])
    def test_known_strategies(self, name):
        assert make_sampler(name, 10).name == name

    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            make_sampler("magic", 10)


class TestProperties:
    @given(st.integers(1, 50), st.integers(0, 200))
    def test_selection_bounds(self, size, rows):
        for sampler in (HeadSampler(size), UniformSampler(size), ReservoirSampler(size)):
            indices = list(sampler.select_indices(rows, seed_key="p"))
            assert len(indices) == min(size, rows)
            assert all(0 <= index < rows for index in indices)
