"""Int8 quantization: recall, exactness envelopes, and arena tracking.

Pinned contracts:

* recall@10 of int8-candidate + exact-re-rank search vs full float32 is
  ≥ 0.98 on the seeded benchmark corpus (the acceptance bar surfaced in
  ``BENCH_index.json``'s ``quant`` stage);
* with a rerank budget that covers the whole candidate set, quantized
  search returns *exactly* the float32 results (the preselect only cuts,
  never rescores — surviving scores are exact float32);
* surviving scores are always exact float32 cosines, never approximations;
* the code mirror tracks arena appends incrementally and rebuilds on
  compaction.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro._util import rng_for
from repro.eval.perf import synthetic_corpus
from repro.index.exact import ExactCosineIndex
from repro.index.lsh import SimHashLSHIndex
from repro.index.quant import ArenaQuantizer, quantize_rows
from repro.index.sharding import ShardedIndex

DIM = 32


def cloud(n: int, key: object, dim: int = DIM) -> np.ndarray:
    matrix = rng_for("quant-test", key).standard_normal((n, dim))
    return matrix / np.linalg.norm(matrix, axis=1, keepdims=True)


def assert_same_ranking(got, want):
    """Same keys in the same order; scores equal to float32-GEMM precision.

    Bitwise score equality would over-assert: the quantized path gathers
    survivor rows before the float32 product, and BLAS reduction order
    differs between a gathered matvec and a full-matrix product (last-ulp
    drift), without ever changing the ranking on non-tied corpora.
    """
    assert [key for key, _ in got] == [key for key, _ in want]
    assert [score for _, score in got] == pytest.approx(
        [score for _, score in want], abs=1e-6
    )


class TestQuantizeRows:
    def test_codes_bounded_and_close(self):
        rows = cloud(40, "codes")
        scales = np.abs(rows).max(axis=0) / 127.0
        codes = quantize_rows(rows, scales)
        assert codes.dtype == np.int8
        assert codes.max() <= 127 and codes.min() >= -127
        recovered = codes.astype(np.float32) * scales
        assert np.max(np.abs(recovered - rows)) <= np.max(scales) * 0.5 + 1e-7

    def test_zero_scale_dimension_is_safe(self):
        rows = np.zeros((4, 3), dtype=np.float32)
        rows[:, 0] = 1.0
        scales = np.array([1.0 / 127.0, 0.0, 0.0])
        codes = quantize_rows(rows, scales)
        assert np.array_equal(codes[:, 1:], np.zeros((4, 2), dtype=np.int8))

    def test_saturates_out_of_range(self):
        rows = np.array([[10.0, -10.0]], dtype=np.float32)
        codes = quantize_rows(rows, np.array([0.01, 0.01]))
        assert codes.tolist() == [[127, -127]]


class TestQuantizerTracking:
    def test_incremental_append_then_rebuild_on_compaction(self):
        index = ExactCosineIndex(DIM)
        points = cloud(100, "track")
        index.bulk_load(list(range(60)), points[:60])
        index.enable_quantization(4)
        quant = index.quantizer
        # First sync happens on first query.
        index.query(points[0], 5, threshold=-1.0)
        assert quant.size == 60
        assert quant.rebuilds == 1
        for position in range(60, 100):
            index.add(position, points[position])
        index.query(points[1], 5, threshold=-1.0)
        assert quant.size == 100
        assert quant.rebuilds == 1  # appends encoded with frozen scales
        for position in range(0, 40):
            index.remove(position)
        assert index.arena.generation > 0  # churn compacted the arena
        index.query(points[50], 5, threshold=-1.0)
        assert quant.size == index.arena.size
        assert quant.rebuilds == 2  # compaction re-quantized from scratch

    def test_invalid_knobs_rejected(self):
        with pytest.raises(ValueError):
            ArenaQuantizer(0)
        with pytest.raises(ValueError):
            ArenaQuantizer(4, floor_slack=-0.1)
        with pytest.raises(ValueError):
            ArenaQuantizer(4, chunk_rows=0)

    def test_dim_beyond_exact_gemm_envelope_rejected(self):
        """127² · dim must stay below 2²⁴ for the fused scorer to be exact."""
        index = ExactCosineIndex(2048)
        with pytest.raises(ValueError, match="dim"):
            index.enable_quantization(4)

    def test_build_syncs_mirror_for_the_read_path(self):
        """`build()` is the write-locked sync point: after it, searches
        find a current mirror and the shared read path never writes."""
        for make in (
            lambda: ExactCosineIndex(DIM),
            lambda: SimHashLSHIndex(DIM, n_bits=64, n_bands=16, threshold=0.2),
        ):
            index = make()
            points = cloud(50, "build-sync")
            index.bulk_load(list(range(40)), points[:40])
            index.enable_quantization(4)
            index.build()
            assert index.quantizer.size == index.arena.size
            for position in range(40, 50):
                index.add(position, points[position])
            index.build()
            assert index.quantizer.size == index.arena.size


class TestQuantizedSearch:
    def test_full_rerank_budget_is_exact(self):
        """rerank_factor * k >= n: quantized results == float32 results."""
        points = cloud(120, "exact-budget")
        queries = cloud(9, "exact-budget-q")
        plain = ExactCosineIndex(DIM)
        plain.bulk_load(list(range(120)), points)
        quantized = ExactCosineIndex(DIM)
        quantized.bulk_load(list(range(120)), points)
        quantized.enable_quantization(rerank_factor=12)  # 12 * 10 = n
        for position in range(9):
            want = plain.query(queries[position], 10, threshold=-1.0)
            got = quantized.query(queries[position], 10, threshold=-1.0)
            assert_same_ranking(got, want)
        want_batch = plain.search_batch(queries, 10, threshold=-1.0)
        got_batch = quantized.search_batch(queries, 10, threshold=-1.0)
        for got, want in zip(got_batch, want_batch):
            assert_same_ranking(got, want)

    def test_surviving_scores_are_exact_float32(self):
        """Quantization may drop candidates but never perturbs a score."""
        points = cloud(200, "score-exact")
        queries = cloud(7, "score-exact-q")
        index = ExactCosineIndex(DIM)
        index.bulk_load(list(range(200)), points)
        index.enable_quantization(3)
        matrix = points.astype(np.float32)
        for position in range(7):
            unit = queries[position].astype(np.float32)
            for key, score in index.query(queries[position], 10, threshold=-1.0):
                exact = float(matrix[key] @ unit)
                assert score == pytest.approx(exact, abs=1e-6)

    def test_recall_at_10_meets_bar(self):
        """The acceptance criterion at test scale: recall@10 >= 0.98."""
        n, dim, k = 4_000, 64, 10
        corpus = synthetic_corpus(n, dim)
        rng = rng_for("quant-test", "recall-queries")
        picks = rng.integers(0, n, size=48)
        jitter = rng.standard_normal((48, dim))
        jitter /= np.linalg.norm(jitter, axis=1, keepdims=True)
        queries = np.sqrt(1.0 - 0.2**2) * corpus[picks] + 0.2 * jitter
        queries /= np.linalg.norm(queries, axis=1, keepdims=True)
        plain = ExactCosineIndex(dim)
        plain.bulk_load(list(range(n)), corpus)
        truth = plain.search_batch(queries, k, threshold=0.5)
        plain.enable_quantization(4)
        approx = plain.search_batch(queries, k, threshold=0.5)
        recalls = []
        for got, want in zip(approx, truth):
            if not want:
                continue
            want_keys = {key for key, _ in want}
            got_keys = {key for key, _ in got}
            recalls.append(len(want_keys & got_keys) / len(want_keys))
        assert recalls, "seeded corpus produced no above-threshold truth"
        assert float(np.mean(recalls)) >= 0.98

    def test_quantized_lsh_still_verifies_bands(self):
        """Quant rides on top of LSH candidate generation, not around it."""
        points = cloud(150, "lsh-quant")
        queries = cloud(5, "lsh-quant-q")
        plain = SimHashLSHIndex(DIM, n_bits=64, n_bands=32, threshold=0.2)
        plain.bulk_load(list(range(150)), points)
        quantized = SimHashLSHIndex(DIM, n_bits=64, n_bands=32, threshold=0.2)
        quantized.bulk_load(list(range(150)), points)
        quantized.enable_quantization(rerank_factor=15)
        for position in range(5):
            want = plain.query(queries[position], 10)
            got = quantized.query(queries[position], 10)
            assert_same_ranking(got, want)
        for got, want in zip(
            quantized.search_batch(queries, 10), plain.search_batch(queries, 10)
        ):
            assert_same_ranking(got, want)

    def test_sharded_quantization_forwards(self):
        points = cloud(100, "shard-quant")
        sharded = ShardedIndex(
            DIM,
            lambda: ExactCosineIndex(DIM),
            n_shards=3,
        )
        sharded.bulk_load(list(range(100)), points)
        assert sharded.quantizer is None
        sharded.enable_quantization(rerank_factor=34)
        assert all(shard.quantizer is not None for shard in sharded.shards)
        plain = ExactCosineIndex(DIM)
        plain.bulk_load(list(range(100)), points)
        query = cloud(1, "shard-quant-q")[0]
        assert_same_ranking(
            sharded.query(query, 8, threshold=-1.0),
            plain.query(query, 8, threshold=-1.0),
        )
        sharded.disable_quantization()
        assert sharded.quantizer is None

    def test_disable_restores_float32_path(self):
        points = cloud(80, "toggle")
        index = ExactCosineIndex(DIM)
        index.bulk_load(list(range(80)), points)
        query = cloud(1, "toggle-q")[0]
        want = index.query(query, 10, threshold=-1.0)
        index.enable_quantization(2)
        index.query(query, 10, threshold=-1.0)
        index.disable_quantization()
        assert index.query(query, 10, threshold=-1.0) == want
