"""Tests for repro.warehouse.cost."""

from __future__ import annotations

import pytest

from repro.warehouse.cost import PricingModel, UsageMeter

_GB = 1024**3


class TestPricingModel:
    def test_zero_bytes_free(self):
        assert PricingModel().cost_of_scan(0) == 0.0

    def test_minimum_applies(self):
        pricing = PricingModel(dollars_per_gb=1.0, minimum_bytes=10 * 1024**2)
        tiny = pricing.cost_of_scan(1)
        assert tiny == pytest.approx(10 * 1024**2 / _GB)

    def test_large_scan_linear(self):
        pricing = PricingModel(dollars_per_gb=2.0, minimum_bytes=0)
        assert pricing.cost_of_scan(_GB) == pytest.approx(2.0)
        assert pricing.cost_of_scan(2 * _GB) == pytest.approx(4.0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            PricingModel().cost_of_scan(-1)

    def test_default_rate_is_five_per_tb(self):
        pricing = PricingModel(minimum_bytes=0)
        assert pricing.cost_of_scan(1024 * _GB) == pytest.approx(5.0)


class TestUsageMeter:
    def test_accumulates(self):
        meter = UsageMeter(PricingModel(dollars_per_gb=1.0, minimum_bytes=0))
        meter.record_scan(_GB)
        meter.record_scan(_GB)
        assert meter.scan_count == 2
        assert meter.scanned_bytes == 2 * _GB
        assert meter.charged_dollars == pytest.approx(2.0)

    def test_record_returns_charge(self):
        meter = UsageMeter(PricingModel(dollars_per_gb=1.0, minimum_bytes=0))
        assert meter.record_scan(_GB) == pytest.approx(1.0)

    def test_reset(self):
        meter = UsageMeter()
        meter.record_scan(123)
        meter.reset()
        assert meter.scan_count == 0
        assert meter.scanned_bytes == 0
        assert meter.charged_dollars == 0.0
