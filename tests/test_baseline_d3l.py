"""Tests for repro.baselines.d3l."""

from __future__ import annotations

import pytest

from repro.baselines.d3l import D3L
from repro.errors import NotIndexedError
from repro.storage.schema import ColumnRef


def company_ref() -> ColumnRef:
    return ColumnRef("db", "customers", "company")


def vendor_ref() -> ColumnRef:
    return ColumnRef("db", "vendors", "vendor_name")


@pytest.fixture()
def indexed_d3l(toy_connector) -> D3L:
    system = D3L()
    system.index_corpus(toy_connector)
    return system


class TestIndexing:
    def test_profiles_built(self, indexed_d3l):
        assert indexed_d3l.profile_count == 8

    def test_search_before_index_raises(self):
        with pytest.raises(NotIndexedError):
            D3L().search(company_ref())

    def test_index_report(self, toy_connector):
        report = D3L().index_corpus(toy_connector)
        assert report.columns_indexed == 8
        assert report.scanned_bytes > 0


class TestEvidences:
    def test_identical_extents_score_high(self, indexed_d3l):
        score = indexed_d3l.score_pair(company_ref(), vendor_ref())
        assert score > 0.3

    def test_unrelated_columns_score_low(self, indexed_d3l):
        score = indexed_d3l.score_pair(
            company_ref(), ColumnRef("db", "colors", "color")
        )
        assert score < indexed_d3l.score_pair(company_ref(), vendor_ref())

    def test_unprofiled_pair_is_zero(self, indexed_d3l):
        assert indexed_d3l.score_pair(company_ref(), ColumnRef("x", "y", "z")) == 0.0

    def test_numeric_pairs_use_distribution_evidence(self, indexed_d3l):
        amount = ColumnRef("db", "customers", "amount")
        hex_len = ColumnRef("db", "colors", "hex_len")
        assert indexed_d3l.score_pair(amount, hex_len) >= 0.0

    def test_name_evidence_contributes(self, toy_connector):
        """Same-named columns get a boost even with moderate extents."""
        system = D3L()
        system.index_corpus(toy_connector)
        id_a = ColumnRef("db", "customers", "id")
        id_b = ColumnRef("db", "vendors", "vendor_id")
        color = ColumnRef("db", "colors", "color")
        assert system.score_pair(id_a, id_b) > system.score_pair(id_a, color)


class TestSearch:
    def test_finds_joinable(self, indexed_d3l):
        result = indexed_d3l.search(company_ref(), 5)
        assert vendor_ref() in result.refs

    def test_search_loads_and_profiles_query(self, indexed_d3l):
        scans_before = indexed_d3l.connector.stats.scan_count
        timing = indexed_d3l.search(company_ref(), 5).timing
        assert indexed_d3l.connector.stats.scan_count == scans_before + 1
        assert timing.load_s > 0
        assert timing.embed_s > 0
        assert timing.lookup_s > 0

    def test_same_table_excluded(self, indexed_d3l):
        result = indexed_d3l.search(company_ref(), 10)
        assert all(not ref.same_table(company_ref()) for ref in result.refs)

    def test_scores_descending(self, indexed_d3l):
        result = indexed_d3l.search(company_ref(), 10)
        scores = [candidate.score for candidate in result.candidates]
        assert scores == sorted(scores, reverse=True)

    def test_thresholds_gate_candidates(self, toy_connector):
        """With prohibitive thresholds nothing qualifies."""
        system = D3L(
            name_threshold=1.01,
            extent_threshold=1.01,
            embedding_threshold=1.01,
            format_threshold=1.01,
            distribution_threshold=1.01,
        )
        system.index_corpus(toy_connector)
        assert system.search(company_ref(), 5).candidates == []
