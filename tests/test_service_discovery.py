"""Tests for repro.service: the DiscoveryService serving facade."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core.config import WarpGateConfig
from repro.core.lookup import LookupService
from repro.core.persistence import load_service
from repro.service import (
    DiscoveryService,
    IndexStats,
    SearchRequest,
    SearchResponse,
    ServiceError,
)
from repro.storage.column import Column
from repro.storage.schema import ColumnRef
from repro.storage.table import Table
from repro.warehouse.connector import WarehouseConnector


def company_ref() -> ColumnRef:
    return ColumnRef("db", "customers", "company")


def vendor_ref() -> ColumnRef:
    return ColumnRef("db", "vendors", "vendor_name")


def suppliers_table() -> Table:
    return Table(
        "suppliers",
        [
            Column("supplier_id", [100, 101, 102]),
            Column(
                "supplier_name",
                ["Acme Dynamics Corp", "Vertex Energy Group", "Nova Analytics Llc"],
            ),
        ],
    )


@pytest.fixture()
def service(toy_connector) -> DiscoveryService:
    svc = DiscoveryService(WarpGateConfig(threshold=0.3))
    svc.open(toy_connector)
    return svc


class TestLifecycle:
    def test_open_indexes_corpus(self, service):
        assert service.is_indexed
        assert service.engine.indexed_count == 8

    def test_reopen_is_rejected(self, service, toy_warehouse):
        """Re-opening would merge two corpora into one index."""
        from tests.conftest import make_toy_warehouse

        with pytest.raises(ServiceError) as excinfo:
            service.open(WarehouseConnector(make_toy_warehouse()))
        assert excinfo.value.code == "bad_request"
        assert service.engine.indexed_count == 8

    def test_search_before_open_is_not_indexed_error(self):
        svc = DiscoveryService()
        with pytest.raises(ServiceError) as excinfo:
            svc.search("db.customers.company")
        assert excinfo.value.code == "not_indexed"

    def test_config_and_engine_mutually_exclusive(self, toy_connector):
        svc = DiscoveryService(WarpGateConfig(threshold=0.3))
        svc.open(toy_connector)
        with pytest.raises(ValueError):
            DiscoveryService(WarpGateConfig(), engine=svc.engine)

    def test_cache_and_engine_mutually_exclusive(self, toy_connector):
        from repro.core.profiles import EmbeddingCache

        svc = DiscoveryService(WarpGateConfig(threshold=0.3))
        svc.open(toy_connector)
        with pytest.raises(ValueError):
            DiscoveryService(cache=EmbeddingCache(), engine=svc.engine)

    def test_dropping_every_table_unindexes(self, service):
        for table in ("customers", "vendors", "colors"):
            service.drop_table("db", table)
        assert not service.is_indexed
        assert service.stats().indexed_columns == 0


class TestSearch:
    def test_finds_joinable_column(self, service):
        response = service.search(company_ref(), 3)
        assert isinstance(response, SearchResponse)
        assert response.refs[0] == vendor_ref()

    def test_accepts_string_query(self, service):
        response = service.search("db.customers.company", 3)
        assert response.refs[0] == vendor_ref()

    def test_two_part_ref_resolves_single_database(self, service):
        response = service.search("customers.company", 3)
        assert response.refs[0] == vendor_ref()

    def test_two_part_ref_ambiguous_is_bad_request(self, service, toy_warehouse):
        toy_warehouse.create_database("other")
        with pytest.raises(ServiceError) as excinfo:
            service.search("customers.company", 3)
        assert excinfo.value.code == "bad_request"

    def test_accepts_typed_request(self, service):
        request = SearchRequest(query="db.customers.company", k=3, threshold=0.3)
        assert service.search(request).refs[0] == vendor_ref()

    def test_matches_engine_search(self, service):
        mine = service.search(company_ref(), 5).refs
        theirs = service.engine.search(company_ref(), 5).refs
        assert mine == theirs

    def test_unknown_table_is_not_found(self, service):
        with pytest.raises(ServiceError) as excinfo:
            service.search("db.ghost_table.col", 3)
        assert excinfo.value.code == "not_found"
        assert excinfo.value.status == 404

    def test_bad_k_is_bad_request(self, service):
        with pytest.raises(ServiceError) as excinfo:
            service.search(SearchRequest(query="db.customers.company", k=0))
        assert excinfo.value.code == "bad_request"

    def test_request_roundtrips_through_dict(self):
        request = SearchRequest(query="db.customers.company", k=3, threshold=0.5)
        assert SearchRequest.from_dict(request.to_dict()) == request

    def test_boolean_k_rejected(self):
        with pytest.raises(ServiceError) as excinfo:
            SearchRequest.from_dict({"query": "db.t.c", "k": True})
        assert excinfo.value.code == "bad_request"

    def test_response_to_dict(self, service):
        payload = service.search(company_ref(), 3).to_dict()
        assert payload["query"] == "db.customers.company"
        assert payload["candidates"][0]["ref"] == "db.vendors.vendor_name"
        assert payload["timing"]["response_time_s"] > 0


class TestBatchSearch:
    def test_parity_with_single_search(self, service):
        queries = [company_ref(), vendor_ref(), company_ref()]
        single = [service.search(q, 5) for q in queries]
        batch = service.search_many([SearchRequest(query=q, k=5) for q in queries])
        assert len(batch) == len(single)
        for one, many in zip(single, batch):
            assert one.refs == many.refs
            # The batched probe scores via one GEMM, the single probe via a
            # gathered matvec; both read the same float32 arena, so scores
            # agree to float32 precision (reduction order may differ).
            assert [c.score for c in one.candidates] == pytest.approx(
                [c.score for c in many.candidates], abs=1e-6
            )

    def test_duplicate_queries_embed_once(self, service):
        scans_before = service.engine.connector.stats.scan_count
        service.search_many([company_ref()] * 4)
        # One scan for the unique query column, not four.
        assert service.engine.connector.stats.scan_count == scans_before + 1

    def test_empty_batch(self, service):
        assert service.search_many([]) == []


@pytest.mark.parametrize("backend", ["lsh", "exact", "pivot"])
class TestIncrementalMutation:
    def make_service(self, warehouse, backend) -> DiscoveryService:
        svc = DiscoveryService(WarpGateConfig(threshold=0.3, search_backend=backend))
        svc.open(WarehouseConnector(warehouse))
        return svc

    def test_add_table_reflected_in_search(self, toy_warehouse, backend):
        svc = self.make_service(toy_warehouse, backend)
        before = svc.engine.indexed_count
        stats = svc.add_table("db", suppliers_table())
        assert isinstance(stats, IndexStats)
        assert stats.indexed_columns == before + 2
        assert stats.mutations == 1
        refs = svc.search(company_ref(), 10).refs
        assert ColumnRef("db", "suppliers", "supplier_name") in refs

    def test_drop_table_evicts_results(self, toy_warehouse, backend):
        svc = self.make_service(toy_warehouse, backend)
        assert vendor_ref() in svc.search(company_ref(), 10).refs
        stats = svc.drop_table("db", "vendors")
        assert stats.indexed_columns == 8 - 3
        refs = svc.search(company_ref(), 10).refs
        assert vendor_ref() not in refs

    def test_drop_unknown_table_is_not_found(self, toy_warehouse, backend):
        svc = self.make_service(toy_warehouse, backend)
        with pytest.raises(ServiceError) as excinfo:
            svc.drop_table("db", "ghost")
        assert excinfo.value.code == "not_found"

    def test_mutation_equivalent_to_full_reindex(self, toy_warehouse, backend):
        """add_table + drop_table must land on the same searchable state as
        re-indexing the final warehouse from scratch."""
        incremental = self.make_service(toy_warehouse, backend)
        incremental.add_table("db", suppliers_table())
        incremental.drop_table("db", "colors")

        from tests.conftest import make_toy_warehouse

        final = make_toy_warehouse()
        final.drop_table("db", "colors")
        final.add_table("db", suppliers_table())
        fresh = self.make_service(final, backend)

        for query in (company_ref(), vendor_ref()):
            assert (
                incremental.search(query, 10).refs == fresh.search(query, 10).refs
            )


class TestReplaceTable:
    def test_replacing_table_evicts_stale_columns(self, service):
        replacement = Table(
            "vendors",
            [Column("vendor_name", ["Acme Dynamics Corp", "Nova Analytics Llc"])],
        )
        service.add_table("db", replacement)
        indexed = service.engine.indexed_refs
        assert ColumnRef("db", "vendors", "vendor_id") not in indexed
        assert ColumnRef("db", "vendors", "city") not in indexed
        assert vendor_ref() in indexed

    def test_column_turned_ineligible_is_evicted(self, service):
        """Same column name, new ineligible dtype: the old embedding must go."""
        replacement = Table(
            "vendors",
            [
                Column("vendor_name", ["Acme Dynamics Corp", "Nova Analytics Llc"]),
                Column("city", [True, False]),  # was STRING, now BOOLEAN
            ],
        )
        service.add_table("db", replacement)
        indexed = service.engine.indexed_refs
        assert ColumnRef("db", "vendors", "city") not in indexed
        assert vendor_ref() in indexed


class TestRefreshColumn:
    def test_refresh_updates_vector(self, service, toy_warehouse):
        before = service.engine.vector_of(vendor_ref()).copy()
        mutated = Table(
            "vendors",
            [
                Column("vendor_id", [10, 11, 12]),
                Column("vendor_name", ["alpha particle", "beta decay", "gamma ray"]),
                Column("city", ["Boston", "Chicago", "Denver"]),
            ],
        )
        toy_warehouse.database("db").add_table(mutated)
        stats = service.refresh_column(vendor_ref())
        assert stats.mutations == 1
        after = service.engine.vector_of(vendor_ref())
        assert not np.allclose(before, after)

    def test_refresh_accepts_string_ref(self, service):
        stats = service.refresh_column("db.vendors.vendor_name")
        assert stats.mutations == 1

    def test_refresh_resolves_two_part_ref(self, service):
        stats = service.refresh_column("vendors.vendor_name")
        assert stats.mutations == 1

    def test_refresh_unindexed_ref_is_not_found(self, service):
        """A refresh must never turn into an insert of an excluded column."""
        with pytest.raises(ServiceError) as excinfo:
            service.refresh_column("db.vendors.nope")
        assert excinfo.value.code == "not_found"
        assert ColumnRef("db", "vendors", "nope") not in service.engine.indexed_refs


class TestStats:
    def test_counters_track_traffic(self, service):
        baseline = service.stats()
        assert baseline.indexed_columns == 8
        assert baseline.tables == 3
        assert baseline.databases == 1
        service.search(company_ref(), 3)
        service.search_many([company_ref(), vendor_ref()])
        service.add_table("db", suppliers_table())
        stats = service.stats()
        assert stats.searches == 3
        assert stats.mutations == 1
        assert stats.tables == 4

    def test_to_dict(self, service):
        payload = service.stats().to_dict()
        assert payload["backend"] == "lsh"
        assert payload["indexed_columns"] == 8
        assert "caches" in payload

    def test_cache_effectiveness_exposed(self, service):
        caches = service.stats().caches
        # The encoder's serialization + value-vector caches are always
        # reported; the registry models additionally carry a token cache,
        # and the serving engine adds its query cache.
        assert {
            "value_tokens",
            "value_vectors",
            "token_cache",
            "query_cache",
        } <= set(caches)
        for name, section in caches.items():
            if name == "coalescer":
                continue  # traffic counters, not a cache (checked below)
            assert {"size", "hits", "misses", "hit_rate"} <= set(section)
        # Indexing the 8-column corpus populated the value caches.
        assert caches["value_vectors"]["size"] > 0

    def test_serving_engine_counters_exposed(self, service):
        service.search_coalesced(company_ref(), 3)
        service.search_coalesced(company_ref(), 3)
        caches = service.stats().caches
        coalescer = caches["coalescer"]
        assert coalescer["requests"] == 2
        assert coalescer["fastpath"] == 2  # sequential submits never batch
        assert {"batches", "mean_batch", "batch_histogram"} <= set(coalescer)
        query_cache = caches["query_cache"]
        # The second identical probe is served from the result cache.
        assert query_cache["hits"] >= 1
        assert query_cache["size"] >= 1


class TestConcurrency:
    def test_search_during_mutation(self, service):
        """Concurrent readers racing an index writer never see torn state."""
        errors: list[Exception] = []
        stop = threading.Event()

        def reader() -> None:
            while not stop.is_set():
                try:
                    response = service.search(company_ref(), 5)
                    # The base tables are never mutated: the join must
                    # always be found, regardless of writer progress.
                    assert vendor_ref() in response.refs
                except Exception as error:  # pragma: no cover - failure path
                    errors.append(error)
                    return

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        try:
            for _ in range(10):
                service.add_table("db", suppliers_table())
                service.drop_table("db", "suppliers")
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=30)
        assert not errors
        assert service.stats().mutations == 20


class TestPersistence:
    def test_save_load_roundtrip(self, service, tmp_path, toy_warehouse):
        artifact = service.save(tmp_path / "svc.npz")
        restored = DiscoveryService.load(
            artifact, connector=WarehouseConnector(toy_warehouse)
        )
        assert restored.search(company_ref(), 3).refs == (
            service.search(company_ref(), 3).refs
        )

    def test_load_service_helper(self, service, tmp_path):
        artifact = service.save(tmp_path / "svc.npz")
        restored = load_service(artifact)
        assert isinstance(restored, DiscoveryService)
        assert restored.engine.indexed_count == service.engine.indexed_count

    def test_loaded_service_supports_mutation(self, service, tmp_path, toy_warehouse):
        artifact = service.save(tmp_path / "svc.npz")
        restored = DiscoveryService.load(
            artifact, connector=WarehouseConnector(toy_warehouse)
        )
        restored.add_table("db", suppliers_table())
        refs = restored.search(company_ref(), 10).refs
        assert ColumnRef("db", "suppliers", "supplier_name") in refs


class TestLookupIntegration:
    def test_lookup_service_accepts_discovery_service(self, service):
        lookup = LookupService(service)
        recommendations = lookup.recommend(company_ref(), k=2)
        assert recommendations[0].candidate == vendor_ref()
        # Routed through the service: the search counter moved.
        assert service.stats().searches >= 1
