"""Tests for repro.embedding.bertlike: parity and the earned slowdown."""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.embedding.bertlike import BertLikeEmbeddingModel
from repro.embedding.hashing import HashingEmbeddingModel


class TestConstruction:
    def test_defaults(self):
        model = BertLikeEmbeddingModel()
        assert model.dim == 64
        assert model.is_trained

    def test_invalid_layers(self):
        with pytest.raises(ValueError):
            BertLikeEmbeddingModel(n_layers=0)

    def test_invalid_seq_len(self):
        with pytest.raises(ValueError):
            BertLikeEmbeddingModel(max_seq_len=1)

    def test_invalid_residual(self):
        with pytest.raises(ValueError):
            BertLikeEmbeddingModel(residual_weight=1.5)


class TestInference:
    def test_shape(self):
        model = BertLikeEmbeddingModel(n_layers=1)
        assert model.embed_tokens(["a", "b", "c"]).shape == (3, model.dim)

    def test_empty(self):
        model = BertLikeEmbeddingModel(n_layers=1)
        assert model.embed_tokens([]).shape == (0, model.dim)

    def test_deterministic(self):
        model = BertLikeEmbeddingModel(n_layers=2)
        a = model.embed_tokens(["acme", "corp"])
        b = model.embed_tokens(["acme", "corp"])
        assert np.allclose(a, b)

    def test_contextual_same_token_differs_by_context(self):
        model = BertLikeEmbeddingModel(n_layers=2, residual_weight=0.0)
        in_context_a = model.embed_tokens(["bank", "river"])[0]
        in_context_b = model.embed_tokens(["bank", "money"])[0]
        assert not np.allclose(in_context_a, in_context_b)

    def test_windows_cover_long_sequences(self):
        model = BertLikeEmbeddingModel(n_layers=1, max_seq_len=8)
        out = model.embed_tokens([f"tok{i}" for i in range(30)])
        assert out.shape[0] == 30
        assert np.isfinite(out).all()

    def test_residual_preserves_base_direction(self):
        base = HashingEmbeddingModel()
        model = BertLikeEmbeddingModel(base_model=base, residual_weight=0.9)
        tokens = ["acme", "globex", "initech"]
        mixed = model.embed_tokens(tokens)
        raw = base.embed_tokens(tokens)
        # High residual weight keeps aggregate direction close to the base.
        mixed_mean = mixed.mean(axis=0)
        raw_mean = raw.mean(axis=0)
        cosine = float(
            mixed_mean @ raw_mean / (np.linalg.norm(mixed_mean) * np.linalg.norm(raw_mean))
        )
        assert cosine > 0.8

    def test_idf_delegates(self):
        model = BertLikeEmbeddingModel()
        assert model.idf("anything") == 1.0


class TestCost:
    def test_slower_than_base_model(self):
        """The §4.4 claim: contextual inference costs real extra compute."""
        base = HashingEmbeddingModel()
        heavy = BertLikeEmbeddingModel(base_model=base, n_layers=4)
        tokens = [f"token{i % 40}" for i in range(256)]
        base.embed_tokens(tokens)  # warm the n-gram cache
        start = time.perf_counter()
        for _ in range(3):
            base.embed_tokens(tokens)
        base_time = time.perf_counter() - start
        start = time.perf_counter()
        for _ in range(3):
            heavy.embed_tokens(tokens)
        heavy_time = time.perf_counter() - start
        assert heavy_time > 2.0 * base_time
