"""Tests for repro.eval.metrics."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.eval.metrics import (
    PRPoint,
    average_precision,
    mean_average_precision,
    pr_curve,
    precision_at_k,
    recall_at_k,
    reciprocal_rank,
)
from repro.storage.schema import ColumnRef


def refs(*names: str) -> list[ColumnRef]:
    return [ColumnRef("db", "t", name) for name in names]


ANSWERS = frozenset(refs("a", "b"))


class TestPrecisionAtK:
    def test_perfect_top2(self):
        assert precision_at_k(refs("a", "b", "x"), ANSWERS, 2) == 1.0

    def test_half(self):
        assert precision_at_k(refs("a", "x"), ANSWERS, 2) == 0.5

    def test_divides_by_k_not_returned(self):
        # Only one result returned, k=2: penalized.
        assert precision_at_k(refs("a"), ANSWERS, 2) == 0.5

    def test_no_answers_zero(self):
        assert precision_at_k(refs("a"), frozenset(), 1) == 0.0

    def test_k_validation(self):
        with pytest.raises(ValueError):
            precision_at_k(refs("a"), ANSWERS, 0)


class TestRecallAtK:
    def test_full(self):
        assert recall_at_k(refs("a", "b"), ANSWERS, 2) == 1.0

    def test_half(self):
        assert recall_at_k(refs("a", "x"), ANSWERS, 2) == 0.5

    def test_grows_with_k(self):
        ranked = refs("x", "a", "y", "b")
        values = [recall_at_k(ranked, ANSWERS, k) for k in (1, 2, 3, 4)]
        assert values == sorted(values)
        assert values[-1] == 1.0

    def test_k_validation(self):
        with pytest.raises(ValueError):
            recall_at_k(refs("a"), ANSWERS, -1)


class TestReciprocalRank:
    def test_first(self):
        assert reciprocal_rank(refs("a", "x"), ANSWERS) == 1.0

    def test_third(self):
        assert reciprocal_rank(refs("x", "y", "b"), ANSWERS) == pytest.approx(1 / 3)

    def test_absent(self):
        assert reciprocal_rank(refs("x", "y"), ANSWERS) == 0.0


class TestAveragePrecision:
    def test_perfect(self):
        assert average_precision(refs("a", "b"), ANSWERS) == 1.0

    def test_interleaved(self):
        # Hits at ranks 1 and 3: AP = (1/1 + 2/3) / 2.
        ap = average_precision(refs("a", "x", "b"), ANSWERS)
        assert ap == pytest.approx((1.0 + 2 / 3) / 2)

    def test_map(self):
        runs = [(refs("a", "b"), ANSWERS), (refs("x"), ANSWERS)]
        assert mean_average_precision(runs) == pytest.approx(0.5)

    def test_map_empty(self):
        assert mean_average_precision([]) == 0.0

    def test_map_skips_unanswerable_queries(self):
        # An empty answer set is undefined, not zero: the perfect run's
        # MAP must not be dragged down by the unanswerable one.
        runs = [(refs("a", "b"), ANSWERS), (refs("x"), frozenset())]
        assert mean_average_precision(runs) == 1.0

    def test_map_all_unanswerable(self):
        assert mean_average_precision([(refs("x"), frozenset())]) == 0.0


class TestPrCurve:
    def test_points_per_k(self):
        curve = pr_curve([(refs("a", "x", "b"), ANSWERS)], ks=(1, 2, 3))
        assert [point.k for point in curve] == [1, 2, 3]
        assert curve[0] == PRPoint(1, 1.0, 0.5)

    def test_averages_over_queries(self):
        runs = [(refs("a"), ANSWERS), (refs("x"), ANSWERS)]
        curve = pr_curve(runs, ks=(1,))
        assert curve[0].precision == pytest.approx(0.5)

    def test_empty_runs(self):
        curve = pr_curve([], ks=(2,))
        assert curve == [PRPoint(2, 0.0, 0.0)]

    def test_skips_unanswerable_queries(self):
        # Averages run over answered queries only (empty-answer convention).
        runs = [(refs("a", "b"), ANSWERS), (refs("a", "b"), frozenset())]
        curve = pr_curve(runs, ks=(2,))
        assert curve[0] == PRPoint(2, 1.0, 1.0)

    def test_all_unanswerable_collapses_to_zero(self):
        curve = pr_curve([(refs("a"), frozenset())], ks=(2,))
        assert curve == [PRPoint(2, 0.0, 0.0)]

    def test_str(self):
        assert "k=2" in str(PRPoint(2, 0.1, 0.2))

    @given(
        st.lists(st.sampled_from(["a", "b", "x", "y", "z"]), unique=True, max_size=5)
    )
    def test_bounds_property(self, names):
        ranked = refs(*names)
        for k in (1, 3, 5):
            assert 0.0 <= precision_at_k(ranked, ANSWERS, k) <= 1.0
            assert 0.0 <= recall_at_k(ranked, ANSWERS, k) <= 1.0
