"""Tests for repro.storage.csv_codec."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import CsvFormatError
from repro.storage.column import Column
from repro.storage.csv_codec import read_csv, read_csv_file, write_csv, write_csv_file
from repro.storage.table import Table
from repro.storage.types import DataType


class TestReadCsv:
    def test_basic(self):
        table = read_csv("a,b\n1,x\n2,y\n", "t")
        assert table.column("a").dtype is DataType.INTEGER
        assert table.column("b").values == ("x", "y")

    def test_empty_payload_rejected(self):
        with pytest.raises(CsvFormatError):
            read_csv("   ", "t")

    def test_blank_header_rejected(self):
        with pytest.raises(CsvFormatError):
            read_csv("a,,c\n1,2,3\n", "t")

    def test_ragged_row_rejected(self):
        with pytest.raises(CsvFormatError):
            read_csv("a,b\n1\n", "t")

    def test_header_only(self):
        table = read_csv("a,b\n", "t")
        assert table.row_count == 0

    def test_quoted_commas(self):
        table = read_csv('a,b\n"x,y",1\n', "t")
        assert table.column("a").values == ("x,y",)

    def test_custom_delimiter(self):
        table = read_csv("a;b\n1;2\n", "t", delimiter=";")
        assert table.column_names == ("a", "b")

    def test_empty_cells_become_null(self):
        table = read_csv("a,b\n1,\n", "t")
        assert table.column("b").values == (None,)

    def test_header_whitespace_stripped(self):
        table = read_csv(" a , b \n1,2\n", "t")
        assert table.column_names == ("a", "b")


class TestWriteCsv:
    def test_roundtrip(self):
        original = Table(
            "t",
            [
                Column("id", [1, 2]),
                Column("name", ["Acme Corp", "Globex"]),
                Column("price", [1.5, 2.25]),
            ],
        )
        recovered = read_csv(write_csv(original), "t")
        assert recovered.column("id").values == (1, 2)
        assert recovered.column("name").values == ("Acme Corp", "Globex")
        assert recovered.column("price").values == (1.5, 2.25)

    def test_null_serialized_as_empty(self):
        # csv.writer quotes a lone empty field to keep the row non-blank.
        table = Table("t", [Column("x", ["a", None], DataType.STRING)])
        assert write_csv(table) == 'x\na\n""\n'
        recovered = read_csv(write_csv(table), "t")
        assert recovered.column("x").values == ("a", None)

    def test_header_always_present(self):
        table = Table("t", [Column("only", [1])])
        assert write_csv(table).splitlines()[0] == "only"


class TestFiles:
    def test_file_roundtrip(self, tmp_path):
        table = Table("demo", [Column("a", [1, 2]), Column("b", ["x", "y"])])
        path = tmp_path / "demo.csv"
        write_csv_file(table, path)
        recovered = read_csv_file(path)
        assert recovered.name == "demo"
        assert recovered.column("a").values == (1, 2)

    def test_explicit_name_overrides_stem(self, tmp_path):
        table = Table("demo", [Column("a", [1])])
        path = tmp_path / "file.csv"
        write_csv_file(table, path)
        assert read_csv_file(path, name="other").name == "other"

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(CsvFormatError):
            read_csv_file(tmp_path / "absent.csv")


simple_cell = st.text(
    alphabet=st.characters(whitelist_categories=("Lu", "Ll", "Nd"), max_codepoint=127),
    min_size=1,
    max_size=12,
)


class TestRoundtripProperty:
    @given(
        st.lists(
            st.tuples(simple_cell, simple_cell),
            min_size=1,
            max_size=20,
        )
    )
    def test_string_table_roundtrip(self, rows):
        table = Table.from_rows(
            "t",
            ["left", "right"],
            rows,
            dtypes=[DataType.STRING, DataType.STRING],
        )
        recovered = read_csv(write_csv(table), "t", infer_types=False)
        assert recovered.row_count == table.row_count
        for name in ("left", "right"):
            assert recovered.column(name).values == table.column(name).values
