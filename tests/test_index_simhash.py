"""Tests for repro.index.simhash."""

from __future__ import annotations

import numpy as np
import pytest

from repro._util import rng_for
from repro.errors import DimensionMismatchError
from repro.index.simhash import SimHashFamily, hamming_distance, signature_cosine


class TestSimHashFamily:
    def test_signature_shape(self):
        family = SimHashFamily(dim=8, n_bits=32)
        signature = family.signature(np.ones(8))
        assert signature.shape == (32,)
        assert set(np.unique(signature)) <= {0, 1}

    def test_deterministic(self):
        a = SimHashFamily(dim=8, n_bits=32).signature(np.ones(8))
        b = SimHashFamily(dim=8, n_bits=32).signature(np.ones(8))
        assert np.array_equal(a, b)

    def test_seed_key_changes_planes(self):
        a = SimHashFamily(8, 32, seed_key="x").signature(np.ones(8))
        b = SimHashFamily(8, 32, seed_key="y").signature(np.ones(8))
        assert not np.array_equal(a, b)

    def test_batch_agrees_with_single(self):
        family = SimHashFamily(dim=8, n_bits=32)
        rng = rng_for("simhash-test", 1)
        matrix = rng.standard_normal((5, 8))
        batch = family.signatures(matrix)
        for row in range(5):
            assert np.array_equal(batch[row], family.signature(matrix[row]))

    def test_dim_mismatch_rejected(self):
        with pytest.raises(DimensionMismatchError):
            SimHashFamily(dim=8).signature(np.ones(9))

    def test_batch_dim_mismatch_rejected(self):
        with pytest.raises(DimensionMismatchError):
            SimHashFamily(dim=8).signatures(np.ones((2, 9)))

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            SimHashFamily(dim=0)
        with pytest.raises(ValueError):
            SimHashFamily(dim=8, n_bits=0)

    def test_opposite_vectors_opposite_signatures(self):
        family = SimHashFamily(dim=8, n_bits=64)
        vector = rng_for("simhash-test", 2).standard_normal(8)
        a = family.signature(vector)
        b = family.signature(-vector)
        assert hamming_distance(a, b) == 64


class TestCollisionProbability:
    def test_identical_is_one(self):
        assert SimHashFamily.collision_probability(1.0) == pytest.approx(1.0)

    def test_orthogonal_is_half(self):
        assert SimHashFamily.collision_probability(0.0) == pytest.approx(0.5)

    def test_opposite_is_zero(self):
        assert SimHashFamily.collision_probability(-1.0) == pytest.approx(0.0)

    def test_monotone(self):
        values = [SimHashFamily.collision_probability(c) for c in (-0.5, 0.0, 0.5, 0.9)]
        assert values == sorted(values)

    def test_empirical_matches_theory(self):
        """Bit agreement rate over random pairs tracks 1 - theta/pi."""
        family = SimHashFamily(dim=16, n_bits=2048)
        rng = rng_for("simhash-empirical")
        base = rng.standard_normal(16)
        base /= np.linalg.norm(base)
        for target in (0.9, 0.5, 0.0):
            other = rng.standard_normal(16)
            other -= (other @ base) * base
            other /= np.linalg.norm(other)
            vector = target * base + np.sqrt(1 - target**2) * other
            agreement = 1 - hamming_distance(
                family.signature(base), family.signature(vector)
            ) / family.n_bits
            assert agreement == pytest.approx(
                SimHashFamily.collision_probability(target), abs=0.05
            )


class TestSignatureCosine:
    def test_identical(self):
        signature = np.ones(64, dtype=np.uint8)
        assert signature_cosine(signature, signature) == pytest.approx(1.0)

    def test_estimates_cosine(self):
        family = SimHashFamily(dim=16, n_bits=4096)
        rng = rng_for("sig-cosine")
        a = rng.standard_normal(16)
        b = a + 0.3 * rng.standard_normal(16)
        a /= np.linalg.norm(a)
        b /= np.linalg.norm(b)
        estimate = signature_cosine(family.signature(a), family.signature(b))
        assert estimate == pytest.approx(float(a @ b), abs=0.08)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(DimensionMismatchError):
            hamming_distance(np.ones(8, dtype=np.uint8), np.ones(16, dtype=np.uint8))
