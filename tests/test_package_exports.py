"""Public API surface tests: what `import repro` promises."""

from __future__ import annotations

import pytest

import repro


class TestTopLevelExports:
    @pytest.mark.parametrize(
        "name",
        [
            "WarpGate",
            "WarpGateConfig",
            "Aurum",
            "D3L",
            "DiscoveryResult",
            "JoinCandidate",
            "LookupService",
            "evaluate_system",
            "generate_testbed",
            "generate_spider_corpus",
            "generate_sigma_sample_database",
        ],
    )
    def test_names_exported(self, name):
        assert hasattr(repro, name)
        assert name in repro.__all__

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None


class TestSubpackageExports:
    def test_embedding_surface(self):
        from repro import embedding

        for name in embedding.__all__:
            assert getattr(embedding, name) is not None

    def test_index_surface(self):
        from repro import index

        for name in index.__all__:
            assert getattr(index, name) is not None

    def test_storage_surface(self):
        from repro import storage

        for name in storage.__all__:
            assert getattr(storage, name) is not None

    def test_warehouse_surface(self):
        from repro import warehouse

        for name in warehouse.__all__:
            assert getattr(warehouse, name) is not None

    def test_datasets_surface(self):
        from repro import datasets

        for name in datasets.__all__:
            assert getattr(datasets, name) is not None

    def test_eval_surface(self):
        from repro import eval as eval_module

        for name in eval_module.__all__:
            assert getattr(eval_module, name) is not None

    def test_baselines_surface(self):
        from repro import baselines

        for name in baselines.__all__:
            assert getattr(baselines, name) is not None

    def test_core_surface(self):
        from repro import core

        for name in core.__all__:
            assert getattr(core, name) is not None


class TestDocstrings:
    """Every public module and class documents itself."""

    @pytest.mark.parametrize(
        "module_name",
        [
            "repro",
            "repro.core",
            "repro.core.warpgate",
            "repro.core.lookup",
            "repro.baselines.aurum",
            "repro.baselines.d3l",
            "repro.embedding.webtable",
            "repro.embedding.bertlike",
            "repro.embedding.finetune",
            "repro.embedding.contextual",
            "repro.index.lsh",
            "repro.index.pivot",
            "repro.warehouse.connector",
            "repro.datasets.nextiajd",
            "repro.datasets.quality",
            "repro.eval.metrics",
        ],
    )
    def test_module_docstrings(self, module_name):
        import importlib

        module = importlib.import_module(module_name)
        assert module.__doc__ and len(module.__doc__.strip()) > 20

    @pytest.mark.parametrize(
        "cls",
        [
            repro.WarpGate,
            repro.WarpGateConfig,
            repro.Aurum,
            repro.D3L,
            repro.LookupService,
        ],
    )
    def test_class_docstrings(self, cls):
        assert cls.__doc__ and len(cls.__doc__.strip()) > 10

    def test_public_methods_documented(self):
        for cls in (repro.WarpGate, repro.Aurum, repro.D3L):
            for name in ("index_corpus", "search"):
                method = getattr(cls, name)
                assert method.__doc__, f"{cls.__name__}.{name} missing docstring"
