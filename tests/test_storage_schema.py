"""Tests for repro.storage.schema."""

from __future__ import annotations

import pytest

from repro.errors import SchemaError
from repro.storage.schema import (
    ColumnRef,
    ColumnSchema,
    ForeignKey,
    TableSchema,
    validate_unique_names,
)
from repro.storage.types import DataType


class TestColumnRef:
    def test_str_with_database(self):
        assert str(ColumnRef("db", "t", "c")) == "db.t.c"

    def test_str_without_database(self):
        assert str(ColumnRef("", "t", "c")) == "t.c"

    def test_parse_three_parts(self):
        assert ColumnRef.parse("a.b.c") == ColumnRef("a", "b", "c")

    def test_parse_two_parts(self):
        assert ColumnRef.parse("b.c") == ColumnRef("", "b", "c")

    def test_parse_rejects_other(self):
        with pytest.raises(SchemaError):
            ColumnRef.parse("too.many.parts.here")

    def test_roundtrip(self):
        ref = ColumnRef("db", "t", "c")
        assert ColumnRef.parse(str(ref)) == ref

    def test_table_key(self):
        assert ColumnRef("db", "t", "c").table_key == ("db", "t")

    def test_same_table(self):
        a = ColumnRef("db", "t", "x")
        b = ColumnRef("db", "t", "y")
        c = ColumnRef("db", "u", "x")
        assert a.same_table(b)
        assert not a.same_table(c)

    def test_same_database(self):
        assert ColumnRef("db", "t", "x").same_database(ColumnRef("db", "u", "y"))
        assert not ColumnRef("a", "t", "x").same_database(ColumnRef("b", "t", "x"))

    def test_ordering_and_hash(self):
        refs = {ColumnRef("a", "b", "c"), ColumnRef("a", "b", "c")}
        assert len(refs) == 1
        assert ColumnRef("a", "a", "a") < ColumnRef("b", "a", "a")


class TestColumnSchema:
    def test_valid(self):
        schema = ColumnSchema("x", DataType.STRING, is_primary_key=True)
        assert schema.is_primary_key

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            ColumnSchema("", DataType.STRING)


class TestForeignKey:
    def test_str(self):
        fk = ForeignKey("a", ColumnRef("db", "t", "c"))
        assert str(fk) == "a -> db.t.c"


class TestTableSchema:
    def _schema(self) -> TableSchema:
        return TableSchema(
            name="t",
            columns=(
                ColumnSchema("id", DataType.INTEGER, is_primary_key=True),
                ColumnSchema("name", DataType.STRING),
            ),
            foreign_keys=(ForeignKey("name", ColumnRef("db", "other", "name")),),
        )

    def test_column_names(self):
        assert self._schema().column_names == ("id", "name")

    def test_primary_keys(self):
        assert self._schema().primary_key_columns == ("id",)

    def test_column_lookup(self):
        assert self._schema().column("name").dtype is DataType.STRING

    def test_missing_column_raises(self):
        with pytest.raises(SchemaError):
            self._schema().column("zzz")

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema(
                "t",
                (ColumnSchema("x", DataType.STRING), ColumnSchema("x", DataType.STRING)),
            )

    def test_fk_on_unknown_column_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema(
                "t",
                (ColumnSchema("x", DataType.STRING),),
                (ForeignKey("zzz", ColumnRef("db", "o", "c")),),
            )

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("", (ColumnSchema("x", DataType.STRING),))


class TestValidateUniqueNames:
    def test_accepts_unique(self):
        validate_unique_names(["a", "b"], kind="column")

    def test_rejects_duplicates(self):
        with pytest.raises(SchemaError):
            validate_unique_names(["a", "a"], kind="column")
