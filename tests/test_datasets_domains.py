"""Tests for repro.datasets.domains and vocabularies."""

from __future__ import annotations

import numpy as np
import pytest

from repro._util import rng_for
from repro.datasets import domains as dom
from repro.datasets import vocabularies as vocab


class TestVocabularies:
    def test_pools_non_empty_and_unique(self):
        for pool in (
            vocab.FIRST_NAMES,
            vocab.LAST_NAMES,
            vocab.CITIES,
            vocab.COUNTRIES,
            vocab.US_STATES,
            vocab.SECTORS,
            vocab.COMPANY_NAMES,
            vocab.PRODUCT_NAMES,
        ):
            assert len(pool) > 0
            assert len(set(pool)) == len(pool)

    def test_company_pool_large(self):
        assert len(vocab.COMPANY_NAMES) >= 1500

    def test_tickers_unique_per_company(self):
        tickers = list(vocab.TICKER_OF_COMPANY.values())
        assert len(tickers) == len(set(tickers))
        assert len(tickers) == len(vocab.COMPANY_NAMES)

    def test_import_is_deterministic(self):
        # Pools are built at import time with no RNG: rebuilding the module
        # helper must give the identical sequence.
        assert vocab.COMPANY_NAMES[:3] == vocab._build_company_names()[:3]


class TestDomainRegistry:
    def test_lookup(self):
        assert dom.domain("company").name == "company"

    def test_unknown_domain(self):
        with pytest.raises(KeyError):
            dom.domain("unicorns")

    def test_all_domains_have_valid_styles(self):
        for value_domain in dom.DOMAINS.values():
            for style in value_domain.styles:
                rendered = dom.render_value(
                    value_domain.name, value_domain.pool[0], style
                )
                assert isinstance(rendered, str)
                assert rendered


class TestRenderValue:
    def test_title(self):
        assert dom.render_value("company", "acme dynamics corp", "title") == (
            "Acme Dynamics Corp"
        )

    def test_upper(self):
        assert dom.render_value("company", "acme dynamics corp", "upper") == (
            "ACME DYNAMICS CORP"
        )

    def test_no_suffix_drops_last_word(self):
        assert dom.render_value("company", "acme dynamics corp", "no_suffix") == (
            "Acme Dynamics"
        )

    def test_last_first(self):
        assert dom.render_value("person", "james smith", "last_first") == "Smith, James"

    def test_unsupported_style_rejected(self):
        with pytest.raises(ValueError):
            dom.render_value("company", "acme dynamics corp", "last_first")


class TestDrawSubset:
    def test_distinct_and_from_pool(self):
        rng = rng_for("test-draw")
        subset = dom.draw_subset("company", rng, 30)
        assert len(set(subset)) == 30
        assert set(subset) <= set(dom.domain("company").pool)

    def test_anchor_slices_deterministic(self):
        rng = rng_for("test-draw")
        a = dom.draw_subset("company", rng, 10, anchor=100)
        b = dom.draw_subset("company", rng, 10, anchor=100)
        assert a == b

    def test_anchor_wraps_pool(self):
        rng = rng_for("test-draw")
        pool_size = len(dom.domain("city").pool)
        subset = dom.draw_subset("city", rng, 5, anchor=pool_size - 2)
        assert len(subset) == 5

    def test_size_capped_by_pool(self):
        rng = rng_for("test-draw")
        assert len(dom.draw_subset("sector", rng, 10_000)) == len(
            dom.domain("sector").pool
        )


class TestMaterializeValues:
    def test_full_coverage_when_rows_allow(self):
        rng = rng_for("test-mat")
        subset = dom.draw_subset("company", rng, 20)
        values = dom.materialize_values(subset, 100, rng, domain_name="company")
        rendered_subset = {dom.render_value("company", v, "title") for v in subset}
        assert set(values) == rendered_subset

    def test_undersampled_rows_draw_without_replacement(self):
        rng = rng_for("test-mat")
        subset = dom.draw_subset("company", rng, 50)
        values = dom.materialize_values(subset, 10, rng, domain_name="company")
        assert len(values) == 10
        assert len(set(values)) == 10

    def test_null_fraction(self):
        rng = rng_for("test-mat-null")
        subset = dom.draw_subset("company", rng, 10)
        values = dom.materialize_values(
            subset, 500, rng, domain_name="company", null_fraction=0.3
        )
        null_count = sum(1 for value in values if value is None)
        assert 0.15 < null_count / 500 < 0.45

    def test_bad_null_fraction(self):
        rng = rng_for("x")
        with pytest.raises(ValueError):
            dom.materialize_values(("a",), 5, rng, domain_name="company", null_fraction=1.0)

    def test_empty_subset_rejected(self):
        with pytest.raises(ValueError):
            dom.materialize_values((), 5, rng_for("x"), domain_name="company")

    def test_skew_repeats_head_values(self):
        rng = rng_for("test-skew")
        subset = tuple(dom.domain("company").pool[:10])
        values = dom.materialize_values(
            subset, 1000, rng, domain_name="company", skew=1.5
        )
        from collections import Counter

        counts = Counter(values)
        # Zipf-ish: the most common value should dominate the least common.
        assert counts.most_common(1)[0][1] > 5 * min(counts.values())


class TestDataShapes:
    def test_code_pool_format(self):
        codes = dom.code_pool("cust", 3, start=41)
        assert codes == ("cust-00041", "cust-00042", "cust-00043")

    def test_code_pool_validation(self):
        with pytest.raises(ValueError):
            dom.code_pool("x", 0)

    def test_sequential_ids(self):
        assert dom.sequential_ids(5, 3) == [5, 6, 7]

    def test_random_dates_in_range(self):
        rng = rng_for("dates")
        dates = dom.random_dates(rng, 50, start="2020-01-01", end="2020-12-31")
        assert all(d.startswith("2020-") for d in dates)

    def test_random_dates_bad_range(self):
        with pytest.raises(ValueError):
            dom.random_dates(rng_for("x"), 5, start="2021-01-01", end="2020-01-01")

    def test_lognormal_amounts_positive(self):
        amounts = dom.lognormal_amounts(rng_for("a"), 100)
        assert all(a > 0 for a in amounts)

    def test_uniform_ints_bounds(self):
        values = dom.uniform_ints(rng_for("i"), 200, 5, 9)
        assert set(values) <= {5, 6, 7, 8, 9}

    def test_uniform_floats_bounds(self):
        values = dom.uniform_floats(rng_for("f"), 100, 1.0, 2.0)
        assert all(1.0 <= v <= 2.0 for v in values)

    def test_person_names_two_part(self):
        assert all(len(name.split()) >= 2 for name in dom.PERSON_NAMES[:100])
