"""Tests for repro.eval.runner, timing and report."""

from __future__ import annotations

import pytest

from repro.baselines.aurum import Aurum
from repro.core.candidates import TimingBreakdown
from repro.core.config import WarpGateConfig
from repro.core.warpgate import WarpGate
from repro.errors import MissingGroundTruthError
from repro.eval.metrics import PRPoint
from repro.eval.report import render_comparison, render_pr_figure, render_table
from repro.eval.runner import evaluate_system
from repro.eval.timing import summarize_timings


class TestEvaluateSystem:
    def test_full_run_on_xs(self, testbed_xs):
        evaluation = evaluate_system(
            WarpGate(), testbed_xs, ks=(2, 5), max_queries=10
        )
        assert evaluation.system == "warpgate"
        assert evaluation.corpus == "testbedXS"
        assert len(evaluation.runs) == 10
        assert evaluation.index_report.columns_indexed > 100
        curve = evaluation.curve
        assert [point.k for point in curve] == [2, 5]
        assert 0.0 <= evaluation.precision_at(2) <= 1.0
        assert 0.0 <= evaluation.recall_at(5) <= 1.0

    def test_unknown_k_raises(self, testbed_xs):
        evaluation = evaluate_system(Aurum(), testbed_xs, ks=(2,), max_queries=3)
        with pytest.raises(KeyError):
            evaluation.precision_at(7)

    def test_missing_ground_truth(self, sigma_corpus):
        with pytest.raises(MissingGroundTruthError):
            evaluate_system(Aurum(), sigma_corpus)

    def test_index_sampler_override(self, testbed_xs):
        from repro.warehouse.sampling import HeadSampler

        evaluation = evaluate_system(
            WarpGate(WarpGateConfig(sample_size=50)),
            testbed_xs,
            ks=(2,),
            max_queries=3,
            index_sampler=HeadSampler(50),
        )
        full = evaluate_system(
            WarpGate(), testbed_xs, ks=(2,), max_queries=3
        )
        assert (
            evaluation.index_report.scanned_bytes < full.index_report.scanned_bytes
        )

    def test_timing_summary(self, testbed_xs):
        evaluation = evaluate_system(Aurum(), testbed_xs, ks=(2,), max_queries=5)
        timing = evaluation.timing
        assert timing.query_count == 5
        assert timing.mean_response_s >= 0.0

    def test_run_records_answers(self, testbed_xs):
        evaluation = evaluate_system(Aurum(), testbed_xs, ks=(2,), max_queries=5)
        truth = testbed_xs.ground_truth
        for run in evaluation.runs:
            assert run.answers == truth.answers(run.query)


class TestSummarizeTimings:
    def test_empty(self):
        summary = summarize_timings([])
        assert summary.query_count == 0
        assert summary.mean_response_s == 0.0
        assert summary.lookup_fraction == 0.0

    def test_averaging(self):
        timings = [
            TimingBreakdown(embed_s=1.0, lookup_s=1.0),
            TimingBreakdown(embed_s=3.0, lookup_s=1.0),
        ]
        summary = summarize_timings(timings)
        assert summary.mean_embed_s == pytest.approx(2.0)
        assert summary.mean_lookup_s == pytest.approx(1.0)
        assert summary.mean_response_s == pytest.approx(3.0)
        assert summary.lookup_fraction == pytest.approx(1.0 / 3.0)

    def test_table2_cell_format(self):
        summary = summarize_timings([TimingBreakdown(embed_s=1.0, lookup_s=0.25)])
        assert summary.table2_cell() == "1.2500 (0.2500)"


class TestReport:
    def test_render_table_alignment(self):
        text = render_table(["name", "value"], [["a", 1], ["bb", 2.5]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert "2.500" in lines[-1]

    def test_render_table_none_as_dash(self):
        text = render_table(["x"], [[None]])
        assert "-" in text

    def test_render_pr_figure(self):
        text = render_pr_figure(
            {
                "warpgate": [PRPoint(2, 0.5, 0.3)],
                "aurum": [PRPoint(2, 0.2, 0.1)],
            },
            title="figure",
        )
        assert "warpgate P" in text
        assert "aurum R" in text
        assert "0.500" in text

    def test_render_comparison(self):
        paper = [{"corpus": "S", "tables": 46}]
        ours = [{"corpus": "S", "tables": 46}]
        text = render_comparison(paper, ours, key="corpus", title="cmp")
        assert "tables (paper)" in text
        assert "tables (ours)" in text

    def test_render_comparison_missing_measured(self):
        paper = [{"corpus": "S", "tables": 46}]
        text = render_comparison(paper, [], key="corpus", title="cmp")
        assert "-" in text
