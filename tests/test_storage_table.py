"""Tests for repro.storage.table."""

from __future__ import annotations

import pytest

from repro.errors import ColumnNotFoundError, SchemaError
from repro.storage.column import Column
from repro.storage.schema import ColumnRef, ForeignKey
from repro.storage.table import Table
from repro.storage.types import DataType


def make_table() -> Table:
    return Table(
        "orders",
        [
            Column("id", [1, 2, 3]),
            Column("item", ["a", "b", "c"]),
            Column("price", [1.0, 2.0, 3.0]),
        ],
        primary_key="id",
    )


class TestConstruction:
    def test_basic(self):
        table = make_table()
        assert table.row_count == 3
        assert table.column_count == 3
        assert table.column_names == ("id", "item", "price")

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Table("", [Column("x", [1])])

    def test_no_columns_rejected(self):
        with pytest.raises(SchemaError):
            Table("t", [])

    def test_ragged_columns_rejected(self):
        with pytest.raises(SchemaError):
            Table("t", [Column("a", [1]), Column("b", [1, 2])])

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            Table("t", [Column("a", [1]), Column("a", [2])])

    def test_unknown_primary_key_rejected(self):
        with pytest.raises(SchemaError):
            Table("t", [Column("a", [1])], primary_key="nope")

    def test_unknown_fk_column_rejected(self):
        fk = ForeignKey("nope", ColumnRef("db", "x", "y"))
        with pytest.raises(SchemaError):
            Table("t", [Column("a", [1])], foreign_keys=[fk])

    def test_from_rows_infers(self):
        table = Table.from_rows("t", ["a", "b"], [["1", "x"], ["2", "y"]])
        assert table.column("a").dtype is DataType.INTEGER
        assert table.column("b").dtype is DataType.STRING

    def test_from_rows_width_mismatch(self):
        with pytest.raises(SchemaError):
            Table.from_rows("t", ["a"], [["1", "extra"]])

    def test_from_rows_explicit_dtypes(self):
        table = Table.from_rows(
            "t", ["a"], [["1"]], dtypes=[DataType.STRING]
        )
        assert table.column("a").dtype is DataType.STRING

    def test_from_mapping(self):
        table = Table.from_mapping("t", {"x": ["1"], "y": ["a"]})
        assert table.column_names == ("x", "y")


class TestAccess:
    def test_column_lookup(self):
        assert make_table().column("item").values == ("a", "b", "c")

    def test_missing_column_raises(self):
        with pytest.raises(ColumnNotFoundError):
            make_table().column("missing")

    def test_contains(self):
        table = make_table()
        assert "id" in table
        assert "missing" not in table

    def test_row(self):
        assert make_table().row(1) == (2, "b", 2.0)

    def test_rows_iterates_all(self):
        assert len(list(make_table().rows())) == 3

    def test_iter_columns(self):
        assert [c.name for c in make_table()] == ["id", "item", "price"]

    def test_len_is_rows(self):
        assert len(make_table()) == 3


class TestSchema:
    def test_schema_reflects_columns(self):
        schema = make_table().schema
        assert schema.column_names == ("id", "item", "price")
        assert schema.primary_key_columns == ("id",)

    def test_schema_column_lookup(self):
        assert make_table().schema.column("price").dtype is DataType.FLOAT

    def test_schema_has_column(self):
        assert make_table().schema.has_column("id")
        assert not make_table().schema.has_column("zzz")


class TestTransformations:
    def test_select(self):
        projected = make_table().select(["price", "id"])
        assert projected.column_names == ("price", "id")

    def test_take(self):
        taken = make_table().take([2, 0])
        assert taken.column("id").values == (3, 1)

    def test_head(self):
        assert make_table().head(2).row_count == 2

    def test_head_beyond_rows(self):
        assert make_table().head(100).row_count == 3

    def test_rename(self):
        assert make_table().rename("x").name == "x"

    def test_with_column(self):
        extended = make_table().with_column(Column("qty", [1, 1, 2]))
        assert extended.column_count == 4
        assert extended.column("qty").values == (1, 1, 2)

    def test_with_column_wrong_length(self):
        with pytest.raises(SchemaError):
            make_table().with_column(Column("qty", [1]))

    def test_with_column_duplicate_name(self):
        with pytest.raises(SchemaError):
            make_table().with_column(Column("id", [0, 0, 0]))

    def test_take_preserves_keys(self):
        taken = make_table().take([0])
        assert taken.primary_key == "id"

    def test_estimated_bytes_positive(self):
        assert make_table().estimated_bytes() > 0
