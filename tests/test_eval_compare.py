"""Bench-trajectory comparison: noise band, profile filtering, CLI gate."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.errors import ReproError
from repro.eval.compare import (
    DEFAULT_TOLERANCE,
    compare_entries,
    compare_history,
    detect_drift,
    load_history,
    render_comparison,
)


def entry(profile="full", **metrics) -> dict:
    payload = {"profile": profile, "git_sha": "abcdef1234567890", "schema": 5}
    payload.update(metrics)
    return payload


def write_history(path, entries) -> None:
    path.write_text(
        "".join(json.dumps(item) + "\n" for item in entries), encoding="utf-8"
    )


class TestCompareEntries:
    def test_drift_inside_band_passes(self):
        # The motivating case: artifact_load_speedup 12.4x -> 9.0x is a
        # 27% drop — noisy CI hardware, not a regression at the 35% band.
        rows = compare_entries(
            entry(artifact_load_speedup=12.4), entry(artifact_load_speedup=9.0)
        )
        (row,) = rows
        assert row["ratio"] == pytest.approx(9.0 / 12.4)
        assert row["regressed"] is False

    def test_cliff_outside_band_fails(self):
        rows = compare_entries(
            entry(artifact_load_speedup=12.4), entry(artifact_load_speedup=4.0)
        )
        assert rows[0]["regressed"] is True

    def test_lower_is_better_direction(self):
        ok = compare_entries(
            entry(graph_path_query_ms=5.0), entry(graph_path_query_ms=6.0)
        )
        assert ok[0]["direction"] == "lower" and ok[0]["regressed"] is False
        bad = compare_entries(
            entry(graph_path_query_ms=5.0), entry(graph_path_query_ms=9.0)
        )
        assert bad[0]["regressed"] is True

    def test_improvement_never_regresses(self):
        rows = compare_entries(
            entry(graph_incremental_speedup=6.0, graph_path_query_ms=8.0),
            entry(graph_incremental_speedup=60.0, graph_path_query_ms=1.0),
        )
        assert not any(row["regressed"] for row in rows)

    def test_missing_metric_skipped(self):
        # Old entries predate the graph stage: no graph metrics, no rows.
        rows = compare_entries(
            entry(batch_speedup=3.0),
            entry(batch_speedup=3.1, graph_incremental_speedup=20.0),
        )
        assert [row["metric"] for row in rows] == ["batch_speedup"]

    def test_null_metric_skipped(self):
        rows = compare_entries(
            entry(batch_speedup=None), entry(batch_speedup=3.0)
        )
        assert rows == []

    def test_bad_tolerance_rejected(self):
        with pytest.raises(ReproError):
            compare_entries(entry(), entry(), tolerance=1.5)


class TestCompareHistory:
    def test_compares_last_two_of_same_profile(self, tmp_path):
        path = tmp_path / "history.jsonl"
        write_history(
            path,
            [
                entry(profile="full", batch_speedup=3.0),
                entry(profile="fast", batch_speedup=90.0),  # must be ignored
                entry(profile="full", batch_speedup=2.9),
            ],
        )
        outcome = compare_history(path)
        assert outcome["profile"] == "full"
        assert outcome["previous"]["batch_speedup"] == 3.0
        assert outcome["current"]["batch_speedup"] == 2.9
        assert outcome["regressions"] == []

    def test_profile_defaults_to_newest_entry(self, tmp_path):
        path = tmp_path / "history.jsonl"
        write_history(
            path,
            [
                entry(profile="full", batch_speedup=3.0),
                entry(profile="fast", batch_speedup=5.0),
                entry(profile="fast", batch_speedup=1.0),
            ],
        )
        outcome = compare_history(path)
        assert outcome["profile"] == "fast"
        assert outcome["regressions"] == ["batch_speedup"]

    def test_explicit_profile_override(self, tmp_path):
        path = tmp_path / "history.jsonl"
        write_history(
            path,
            [
                entry(profile="full", batch_speedup=3.0),
                entry(profile="full", batch_speedup=3.2),
                entry(profile="fast", batch_speedup=1.0),
                entry(profile="fast", batch_speedup=1.1),
            ],
        )
        outcome = compare_history(path, profile="full")
        assert outcome["current"]["batch_speedup"] == 3.2

    def test_single_entry_is_error(self, tmp_path):
        path = tmp_path / "history.jsonl"
        write_history(path, [entry(profile="full")])
        with pytest.raises(ReproError, match="at least two"):
            compare_history(path)

    def test_missing_file_is_error(self, tmp_path):
        with pytest.raises(ReproError, match="no bench history"):
            compare_history(tmp_path / "nope.jsonl")

    def test_malformed_line_is_error(self, tmp_path):
        path = tmp_path / "history.jsonl"
        path.write_text('{"profile": "full"}\nnot json\n', encoding="utf-8")
        with pytest.raises(ReproError, match="invalid JSON"):
            load_history(path)

    def test_render_mentions_shas_and_band(self, tmp_path):
        path = tmp_path / "history.jsonl"
        write_history(
            path,
            [entry(batch_speedup=3.0), entry(batch_speedup=2.9)],
        )
        text = render_comparison(compare_history(path))
        assert "abcdef123456" in text
        assert f"{DEFAULT_TOLERANCE:.0%}" in text
        assert "batch_speedup" in text


class TestCLIGate:
    def test_clean_trajectory_exits_zero(self, tmp_path, capsys):
        path = tmp_path / "history.jsonl"
        write_history(
            path,
            [
                entry(artifact_load_speedup=12.4, graph_incremental_speedup=18.0),
                entry(artifact_load_speedup=9.0, graph_incremental_speedup=17.0),
            ],
        )
        code = main(["bench-compare", "--history", str(path)])
        assert code == 0
        output = capsys.readouterr().out
        assert "artifact_load_speedup" in output and "REGRESSED" not in output

    def test_regression_exits_nonzero(self, tmp_path, capsys):
        path = tmp_path / "history.jsonl"
        write_history(
            path,
            [
                entry(artifact_load_speedup=12.4),
                entry(artifact_load_speedup=4.0),
            ],
        )
        code = main(["bench-compare", "--history", str(path)])
        assert code == 1
        captured = capsys.readouterr()
        assert "REGRESSED" in captured.out
        assert "artifact_load_speedup" in captured.err

    def test_tolerance_flag(self, tmp_path, capsys):
        path = tmp_path / "history.jsonl"
        write_history(
            path,
            [entry(batch_speedup=3.0), entry(batch_speedup=2.7)],
        )
        assert main(["bench-compare", "--history", str(path)]) == 0
        assert (
            main(["bench-compare", "--history", str(path), "--tolerance", "0.05"])
            == 1
        )
        capsys.readouterr()

    def test_missing_history_is_error(self, tmp_path, capsys):
        code = main(["bench-compare", "--history", str(tmp_path / "absent.jsonl")])
        assert code == 2
        assert "no bench history" in capsys.readouterr().err

    def test_profile_flag(self, tmp_path, capsys):
        path = tmp_path / "history.jsonl"
        write_history(
            path,
            [
                entry(profile="full", batch_speedup=3.0),
                entry(profile="full", batch_speedup=2.9),
                entry(profile="fast", batch_speedup=9.0),
            ],
        )
        code = main(["bench-compare", "--history", str(path), "--profile", "full"])
        assert code == 0
        assert "full profile" in capsys.readouterr().out


class TestWindowedDrift:
    """The windowed gate catches the leak the pairwise band waved through."""

    def test_historical_slide_is_caught(self):
        # The real committed trajectory: 12.4 -> 9.0 -> 8.4 -> 7.8, every
        # adjacent step inside the 35% pairwise band.  Against the window
        # best (12.4) the 7.8 entry is a 37% cumulative loss — drift.
        window = [entry(artifact_load_speedup=value) for value in (12.4, 9.0, 8.4)]
        (row,) = detect_drift(window, entry(artifact_load_speedup=7.8))
        assert row["window_best"] == pytest.approx(12.4)
        assert row["ratio"] == pytest.approx(7.8 / 12.4)
        assert row["drifted"] is True

    def test_recovered_window_passes(self):
        # Once the 12.4 entry ages out, the same 7.8 sits within 25% of
        # the surviving window best (9.0) — the gate arms for the future
        # without failing every subsequent run forever.
        window = [entry(artifact_load_speedup=value) for value in (9.0, 8.4, 7.8)]
        (row,) = detect_drift(window, entry(artifact_load_speedup=7.8))
        assert row["drifted"] is False

    def test_entries_missing_metric_are_skipped(self):
        window = [entry(), entry(artifact_load_speedup=None), entry(artifact_load_speedup=10.0)]
        (row,) = detect_drift(
            window, entry(artifact_load_speedup=9.0), min_entries=1
        )
        assert row["window_size"] == 1
        assert row["window_best"] == pytest.approx(10.0)

    def test_short_window_does_not_arm(self):
        # One prior entry is the pairwise gate's comparison; the tighter
        # drift band must not overrule its noise verdict (12.4 -> 9.0 is
        # a pass there).
        assert (
            detect_drift(
                [entry(artifact_load_speedup=12.4)],
                entry(artifact_load_speedup=9.0),
            )
            == []
        )

    def test_empty_window_yields_no_rows(self):
        assert detect_drift([entry()], entry(artifact_load_speedup=9.0)) == []

    def test_non_higher_is_better_metric_rejected(self):
        with pytest.raises(ReproError):
            detect_drift([entry()], entry(), metrics=("batch_per_query_ms",))

    def test_bad_tolerance_rejected(self):
        with pytest.raises(ReproError):
            detect_drift([entry()], entry(), tolerance=1.5)

    def test_compare_history_tags_drift_regressions(self, tmp_path):
        path = tmp_path / "history.jsonl"
        write_history(
            path,
            [entry(artifact_load_speedup=value) for value in (12.4, 9.0, 8.4, 7.8)],
        )
        outcome = compare_history(path)
        # Pairwise (8.4 -> 7.8) is clean; only the windowed gate fires.
        assert outcome["regressions"] == ["artifact_load_speedup (drift)"]
        assert outcome["drift"][0]["drifted"] is True
        rendered = render_comparison(outcome)
        assert "Windowed drift" in rendered
        assert "DRIFTED" in rendered

    def test_window_looks_back_only_drift_window_entries(self, tmp_path):
        path = tmp_path / "history.jsonl"
        # The 12.4 high-water mark is 4 entries back — outside the
        # 3-entry window — so the gate anchors on 9.0 and passes.
        write_history(
            path,
            [
                entry(artifact_load_speedup=value)
                for value in (12.4, 9.0, 8.4, 7.8, 7.8)
            ],
        )
        outcome = compare_history(path)
        assert outcome["regressions"] == []
        assert outcome["drift"][0]["window_best"] == pytest.approx(9.0)
