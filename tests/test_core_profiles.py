"""Tests for repro.core.profiles (EmbeddingCache)."""

from __future__ import annotations

import numpy as np

from repro.core.profiles import EmbeddingCache
from repro.storage.schema import ColumnRef


def ref(name: str) -> ColumnRef:
    return ColumnRef("db", "t", name)


class TestEmbeddingCache:
    def test_miss_then_hit(self):
        cache = EmbeddingCache()
        assert cache.get(ref("a")) is None
        cache.put(ref("a"), np.ones(4))
        assert cache.get(ref("a")) is not None
        assert cache.hits == 1
        assert cache.misses == 1

    def test_hit_rate(self):
        cache = EmbeddingCache()
        cache.put(ref("a"), np.ones(4))
        cache.get(ref("a"))
        cache.get(ref("b"))
        assert cache.hit_rate == 0.5

    def test_hit_rate_empty(self):
        assert EmbeddingCache().hit_rate == 0.0

    def test_contains_and_len(self):
        cache = EmbeddingCache()
        cache.put(ref("a"), np.ones(4))
        assert ref("a") in cache
        assert len(cache) == 1

    def test_invalidate(self):
        cache = EmbeddingCache()
        cache.put(ref("a"), np.ones(4))
        cache.invalidate(ref("a"))
        assert ref("a") not in cache

    def test_invalidate_missing_is_noop(self):
        EmbeddingCache().invalidate(ref("zzz"))

    def test_clear_resets_counters(self):
        cache = EmbeddingCache()
        cache.put(ref("a"), np.ones(4))
        cache.get(ref("a"))
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 0
        assert cache.misses == 0
