"""Tests for repro.warehouse.catalog."""

from __future__ import annotations

import pytest

from repro.errors import DatabaseNotFoundError, TableNotFoundError
from repro.storage.column import Column
from repro.storage.schema import ColumnRef
from repro.storage.table import Table
from repro.warehouse.catalog import Database, Warehouse


def tiny_table(name: str = "t") -> Table:
    return Table(name, [Column("a", [1, 2]), Column("b", ["x", "y"])])


class TestDatabase:
    def test_add_and_lookup(self):
        database = Database("db")
        database.add_table(tiny_table())
        assert database.table("t").name == "t"
        assert "t" in database
        assert len(database) == 1

    def test_missing_table_raises(self):
        with pytest.raises(TableNotFoundError):
            Database("db").table("zzz")

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Database("")

    def test_table_names(self):
        database = Database("db")
        database.add_table(tiny_table("a"))
        database.add_table(tiny_table("b"))
        assert database.table_names == ("a", "b")


class TestWarehouse:
    def test_create_database_idempotent(self):
        warehouse = Warehouse()
        first = warehouse.create_database("db")
        second = warehouse.create_database("db")
        assert first is second

    def test_missing_database_raises(self):
        with pytest.raises(DatabaseNotFoundError):
            Warehouse().database("zzz")

    def test_add_table_creates_database(self):
        warehouse = Warehouse()
        warehouse.add_table("db", tiny_table())
        assert "db" in warehouse
        assert warehouse.table_count == 1

    def test_counts(self):
        warehouse = Warehouse()
        warehouse.add_table("db1", tiny_table("a"))
        warehouse.add_table("db2", tiny_table("b"))
        assert warehouse.table_count == 2
        assert warehouse.column_count == 4
        assert warehouse.row_count == 4

    def test_resolve_ref(self):
        warehouse = Warehouse()
        warehouse.add_table("db", tiny_table())
        table = warehouse.resolve(ColumnRef("db", "t", "a"))
        assert table.name == "t"

    def test_column_refs(self):
        warehouse = Warehouse()
        warehouse.add_table("db", tiny_table())
        refs = list(warehouse.column_refs())
        assert ColumnRef("db", "t", "a") in refs
        assert len(refs) == 2

    def test_table_refs(self):
        warehouse = Warehouse()
        warehouse.add_table("db", tiny_table())
        assert [(db, t.name) for db, t in warehouse.table_refs()] == [("db", "t")]

    def test_database_names(self):
        warehouse = Warehouse()
        warehouse.create_database("x")
        warehouse.create_database("y")
        assert warehouse.database_names == ("x", "y")
