"""Tests for hybrid semantic+syntactic scoring in WarpGate.

Hybrid mode blends cosine with a MinHash containment estimate
(``w · cosine + (1 - w) · containment``) and ranks/filters on the blend —
recovering high-containment pairs whose embeddings fall below the cosine
threshold.  These tests pin the config surface, the sketch lifecycle, the
blend arithmetic, and the recovery behaviour itself.
"""

from __future__ import annotations

import pytest

from repro.core.config import WarpGateConfig
from repro.core.warpgate import WarpGate
from repro.storage.column import Column
from repro.storage.schema import ColumnRef
from repro.storage.table import Table
from repro.warehouse.catalog import Warehouse
from repro.warehouse.connector import WarehouseConnector


def hybrid_config(**overrides) -> WarpGateConfig:
    return WarpGateConfig(search_backend="exact", **overrides).with_scoring("hybrid")


def containment_warehouse() -> Warehouse:
    """A high-containment / moderate-cosine pair plus an unrelated table.

    ``orders.code`` is fully contained in ``catalog.all_codes``, but the
    catalog column's 60 extra tokens dilute its mean embedding to a cosine
    around 0.46 — well under the 0.7 threshold.  The regime hybrid
    scoring exists for.
    """
    warehouse = Warehouse("contain")
    codes = [f"zq{i:02d}" for i in range(20)]
    noisy = codes + [f"wx{i:02d}" for i in range(60)]
    cities = [
        "boston", "chicago", "denver", "austin", "seattle",
        "portland", "atlanta", "dallas", "miami", "phoenix",
    ]
    warehouse.add_table("db", Table("orders", [Column("code", codes)]))
    warehouse.add_table("db", Table("catalog", [Column("all_codes", noisy)]))
    warehouse.add_table("db", Table("cities", [Column("city", cities)]))
    return warehouse


QUERY = ColumnRef("db", "orders", "code")
CONTAINED = ColumnRef("db", "catalog", "all_codes")


class TestConfig:
    def test_unknown_scoring_rejected(self):
        with pytest.raises(ValueError):
            WarpGateConfig(scoring="jaccard")

    @pytest.mark.parametrize("weight", [0.0, -0.5, 1.5])
    def test_semantic_weight_bounds(self, weight):
        with pytest.raises(ValueError):
            WarpGateConfig(hybrid_semantic_weight=weight)

    @pytest.mark.parametrize("floor", [-1.5, 1.01])
    def test_floor_bounds(self, floor):
        with pytest.raises(ValueError):
            WarpGateConfig(hybrid_floor=floor)

    def test_with_scoring_copies_knobs(self):
        config = WarpGateConfig().with_scoring(
            "hybrid", semantic_weight=0.8, floor=0.5
        )
        assert config.scoring == "hybrid"
        assert config.hybrid_semantic_weight == 0.8
        assert config.hybrid_floor == 0.5

    def test_with_scoring_keeps_defaults(self):
        config = WarpGateConfig().with_scoring("hybrid")
        assert config.hybrid_semantic_weight == 0.6
        assert config.hybrid_floor == 0.35


class TestSketchLifecycle:
    def test_cosine_mode_captures_no_sketches(self, toy_connector):
        system = WarpGate(WarpGateConfig(search_backend="exact"))
        system.index_corpus(toy_connector)
        assert system._signatures == {}

    def test_hybrid_mode_sketches_every_indexed_column(self, toy_connector):
        system = WarpGate(hybrid_config())
        system.index_corpus(toy_connector)
        assert set(system._signatures) == set(system.indexed_refs)

    def test_add_columns_sketches(self, toy_connector):
        system = WarpGate(hybrid_config())
        system.index_corpus(toy_connector)
        ref = ColumnRef("db", "customers", "company")
        system.remove_column(ref)
        assert ref not in system._signatures
        system.add_columns([ref])
        assert ref in system._signatures

    def test_remove_column_drops_the_sketch(self, toy_connector):
        system = WarpGate(hybrid_config())
        system.index_corpus(toy_connector)
        ref = ColumnRef("db", "colors", "color")
        system.remove_column(ref)
        assert ref not in system._signatures


class TestHybridSearch:
    @pytest.fixture()
    def contained_system(self):
        system = WarpGate(hybrid_config())
        system.index_corpus(WarehouseConnector(containment_warehouse()))
        return system

    def test_cosine_misses_the_contained_pair(self):
        system = WarpGate(WarpGateConfig(search_backend="exact"))
        system.index_corpus(WarehouseConnector(containment_warehouse()))
        # Premise: the pair really does sit below the cosine threshold.
        assert system.similarity(QUERY, CONTAINED) < system.config.threshold
        assert CONTAINED not in system.search(QUERY, 10).refs

    def test_hybrid_recovers_the_contained_pair(self, contained_system):
        result = contained_system.search(QUERY, 10)
        assert CONTAINED in result.refs

    def test_blend_arithmetic(self, contained_system):
        explanation = contained_system.explain(QUERY, CONTAINED)
        assert explanation["scoring"] == "hybrid"
        weight = contained_system.config.hybrid_semantic_weight
        expected = (
            weight * explanation["cosine"]
            + (1.0 - weight) * explanation["containment"]
        )
        assert explanation["blended"] == pytest.approx(expected, abs=1e-3)
        assert explanation["above_floor"] is True

    def test_containment_of_identical_extents_is_one(self, toy_connector):
        system = WarpGate(hybrid_config())
        system.index_corpus(toy_connector)
        explanation = system.explain(
            ColumnRef("db", "customers", "company"),
            ColumnRef("db", "vendors", "vendor_name"),
        )
        # Identical value sets produce identical signatures: the estimate
        # is exact, no MinHash noise.
        assert explanation["containment"] == 1.0

    def test_threshold_overrides_the_blend_floor(self, contained_system):
        # The contained pair blends to ~0.62: a floor above that hides it.
        assert CONTAINED not in contained_system.search(QUERY, 10, threshold=0.9).refs
        assert CONTAINED in contained_system.search(QUERY, 10, threshold=0.1).refs

    def test_scores_sorted_and_k_respected(self, toy_connector):
        system = WarpGate(hybrid_config())
        system.index_corpus(toy_connector)
        result = system.search(ColumnRef("db", "customers", "company"), 2)
        assert len(result) <= 2
        scores = [candidate.score for candidate in result]
        assert scores == sorted(scores, reverse=True)

    def test_vector_search_stays_cosine_ranked(self, contained_system):
        # Raw vectors carry no value set to sketch: documented degradation.
        vector = contained_system.vector_of(QUERY)
        result = contained_system.search_vector(vector, 10, exclude=QUERY)
        for candidate in result:
            assert candidate.score == pytest.approx(
                contained_system.similarity(QUERY, candidate.ref)
            )

    def test_falls_back_to_cosine_without_a_sketch(self):
        # A restored-artifact-style engine: embeddings cached, but no
        # sketches and no connector to scan value sets from.
        from repro.core.profiles import EmbeddingCache

        system = WarpGate(hybrid_config(), cache=EmbeddingCache())
        system.index_corpus(WarehouseConnector(containment_warehouse()))
        system._signatures.clear()
        system._connector = None
        result = system.search(QUERY, 10)
        # Pure cosine at threshold 0.7: the contained pair is lost again.
        assert CONTAINED not in result.refs
