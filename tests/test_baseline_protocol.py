"""Shared search-protocol conformance: every discovery system, one contract.

The quality harness (:mod:`repro.eval.quality`) compares WarpGate, Aurum,
and D3L head-to-head, which is only meaningful if they all honour the same
:class:`~repro.core.candidates.DiscoveryResult` invariants: the query is
echoed back, the query itself and its table-mates never appear as
candidates, scores come ranked best-first, and ``k`` bounds the result.
Each system has its own unit suite; this one pins the *shared* protocol so
a new baseline (or a scoring-mode change) cannot silently drift.
"""

from __future__ import annotations

import pytest

from repro.baselines.aurum import Aurum
from repro.baselines.d3l import D3L
from repro.core.candidates import DiscoveryResult
from repro.core.config import WarpGateConfig
from repro.core.warpgate import WarpGate
from repro.storage.schema import ColumnRef

# Factories, not instances: each test gets a fresh system so mutation in
# one parametrization cannot leak into another.
_SYSTEMS = {
    "aurum": lambda: Aurum(edge_threshold=0.5),
    "d3l": lambda: D3L(),
    "warpgate-cosine": lambda: WarpGate(WarpGateConfig(search_backend="exact")),
    "warpgate-hybrid": lambda: WarpGate(
        WarpGateConfig(search_backend="exact").with_scoring("hybrid")
    ),
}


@pytest.fixture(params=sorted(_SYSTEMS))
def indexed_system(request, toy_connector):
    system = _SYSTEMS[request.param]()
    system.index_corpus(toy_connector)
    return system


def query_ref() -> ColumnRef:
    return ColumnRef("db", "customers", "company")


class TestSearchProtocol:
    def test_returns_discovery_result_echoing_query(self, indexed_system):
        result = indexed_system.search(query_ref(), 5)
        assert isinstance(result, DiscoveryResult)
        assert result.query == query_ref()

    def test_query_is_never_its_own_candidate(self, indexed_system):
        result = indexed_system.search(query_ref(), 10)
        assert query_ref() not in result.refs

    def test_same_table_columns_excluded(self, indexed_system):
        result = indexed_system.search(query_ref(), 10)
        assert all(not ref.same_table(query_ref()) for ref in result.refs)

    def test_scores_ranked_descending(self, indexed_system):
        scores = [c.score for c in indexed_system.search(query_ref(), 10)]
        assert scores == sorted(scores, reverse=True)

    def test_k_bounds_the_result(self, indexed_system):
        assert len(indexed_system.search(query_ref(), 1)) <= 1
        assert len(indexed_system.search(query_ref(), 3)) <= 3

    def test_finds_the_identical_extent(self, indexed_system):
        # The toy warehouse's one obvious join: customers.company and
        # vendors.vendor_name share all five values.
        result = indexed_system.search(query_ref(), 5)
        assert ColumnRef("db", "vendors", "vendor_name") in result.refs

    def test_candidates_are_indexed_refs(self, indexed_system, toy_warehouse):
        known = {
            ColumnRef(database.name, table.name, column.name)
            for database in toy_warehouse.databases()
            for table in database.tables()
            for column in table.columns
        }
        result = indexed_system.search(query_ref(), 10)
        assert set(result.refs) <= known
