"""Tests for repro.storage.types and inference primitives."""

from __future__ import annotations

from datetime import date

import pytest

from repro.errors import TypeInferenceError
from repro.storage.types import (
    DataType,
    looks_like_bool,
    looks_like_date,
    looks_like_float,
    looks_like_int,
    parse_bool,
    parse_date,
)


class TestDataType:
    def test_numeric_flags(self):
        assert DataType.INTEGER.is_numeric
        assert DataType.FLOAT.is_numeric
        assert not DataType.STRING.is_numeric
        assert not DataType.DATE.is_numeric

    def test_textual_flag(self):
        assert DataType.STRING.is_textual
        assert not DataType.INTEGER.is_textual

    def test_python_types(self):
        assert DataType.STRING.python_type() is str
        assert DataType.INTEGER.python_type() is int
        assert DataType.FLOAT.python_type() is float
        assert DataType.BOOLEAN.python_type() is bool
        assert DataType.DATE.python_type() is date


class TestParseDate:
    def test_iso(self):
        assert parse_date("2021-03-05") == date(2021, 3, 5)

    def test_slash_ymd(self):
        assert parse_date("2021/03/05") == date(2021, 3, 5)

    def test_us_style(self):
        assert parse_date("03/05/2021") == date(2021, 3, 5)

    def test_datetime_accepted(self):
        assert parse_date("2021-03-05T10:11:12") == date(2021, 3, 5)

    def test_garbage_rejected(self):
        with pytest.raises(TypeInferenceError):
            parse_date("not a date")

    def test_word_rejected_fast(self):
        with pytest.raises(TypeInferenceError):
            parse_date("march fifth")


class TestSyntaxChecks:
    @pytest.mark.parametrize("text", ["1", "-5", "+42", "007"])
    def test_int_accepts(self, text):
        assert looks_like_int(text)

    @pytest.mark.parametrize("text", ["1.5", "a", "", "1e5 x", "1.0.0"])
    def test_int_rejects(self, text):
        assert not looks_like_int(text)

    @pytest.mark.parametrize("text", ["1.5", "-0.2", ".5", "1e-3", "42"])
    def test_float_accepts(self, text):
        assert looks_like_float(text)

    @pytest.mark.parametrize("text", ["abc", "", "1,000", "--5"])
    def test_float_rejects(self, text):
        assert not looks_like_float(text)

    @pytest.mark.parametrize("text", ["true", "False", "YES", "n", "0", "1"])
    def test_bool_accepts(self, text):
        assert looks_like_bool(text)

    @pytest.mark.parametrize("text", ["maybe", "", "2", "truthy"])
    def test_bool_rejects(self, text):
        assert not looks_like_bool(text)

    def test_date_check(self):
        assert looks_like_date("2020-01-01")
        assert not looks_like_date("2020-13-45")
        assert not looks_like_date("hello")


class TestParseBool:
    @pytest.mark.parametrize("text,expected", [("true", True), ("N", False), ("1", True)])
    def test_values(self, text, expected):
        assert parse_bool(text) is expected

    def test_rejects_garbage(self):
        with pytest.raises(TypeInferenceError):
            parse_bool("maybe")
