"""Packaging for the WarpGate reproduction.

The version is sourced from ``repro.__version__`` by regex (not import) so
building a wheel never requires the runtime dependencies.
"""

import re
from pathlib import Path

from setuptools import find_packages, setup

_INIT = Path(__file__).parent / "src" / "repro" / "__init__.py"
_VERSION = re.search(
    r'^__version__\s*=\s*"([^"]+)"', _INIT.read_text(encoding="utf-8"), re.MULTILINE
).group(1)

setup(
    name="warpgate-repro",
    version=_VERSION,
    description=(
        "Reproduction of WarpGate: A Semantic Join Discovery System for "
        "Cloud Data Warehouses (CIDR 2023)"
    ),
    long_description=(Path(__file__).parent / "README.md").read_text(encoding="utf-8"),
    long_description_content_type="text/markdown",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
    entry_points={"console_scripts": ["warpgate = repro.cli:main"]},
    classifiers=[
        "Programming Language :: Python :: 3",
        "Topic :: Database",
        "Topic :: Scientific/Engineering :: Information Analysis",
    ],
)
